"""The TelegraphCQ Executor: Execution Objects and Dispatch Units
(Section 4.2.2), on the unified scheduler core.

The executor maps "our shared continuous processing model onto a thread
structure that will allow for adaptivity while incurring minimal
overhead".  The design points reproduced here:

* **Execution Objects (EOs)** — the units the OS would schedule (one
  system thread each).  Here they are cooperatively scheduled; each EO
  hosts a :class:`repro.sched.Scheduler` over its DUs with a pluggable
  policy (round-robin, busy-first, deficit-round-robin, or the
  backpressure/QoS-aware policy), and the executor itself runs the EOs
  under a top-level scheduler — every layer speaks the one
  :class:`~repro.sched.protocol.Schedulable` protocol.
* **Dispatch Units (DUs)** — non-preemptive work abstractions following
  the Fjords model: ``run_once`` does a bounded quantum and returns a
  :class:`~repro.sched.protocol.StepResult`.  A DU can host (mode 1) a
  traditional one-shot plan, (mode 2) a single-eddy dataflow, or
  (mode 3) a shared continuous-query eddy — the three modes the paper
  lists.
* **Query classes by footprint** — queries over overlapping stream sets
  land in the same EO (so they can share SteMs and grouped filters);
  disjoint footprints get separate EOs.  Implemented with a union-find
  over stream names, maintained online as queries come and go.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import (Any, Callable, Deque, Dict, FrozenSet, Iterable, List,
                    Optional, Set, Tuple as TypingTuple)

from repro.errors import ExecutionError
from repro.fjords.fjord import Fjord
from repro.monitor.telemetry import get_registry
from repro.sched.policy import POLICIES as SCHED_POLICIES
from repro.sched.protocol import StepResult, coerce_step_result, unit_ready
from repro.sched.quantum import AdaptiveQuantumController
from repro.sched.scheduler import Scheduler, drive


class DispatchUnit:
    """A non-preemptive unit of work inside an EO.

    ``step`` may return a bool (legacy) or a
    :class:`~repro.sched.protocol.StepResult`; ``run_once`` always
    returns a StepResult.  The optional hints — ``ready``, ``pressure``,
    ``selectivity`` — feed the EO's scheduling policy and the adaptive
    quantum controller; ``weight`` and ``query_class`` parameterise the
    deficit-round-robin and QoS-aware policies.
    """

    #: paper's three DU modes.
    MODE_TRADITIONAL = 1
    MODE_SINGLE_EDDY = 2
    MODE_SHARED_CQ = 3

    def __init__(self, name: str, mode: int,
                 step: Callable[[int], Any],
                 is_finished: Callable[[], bool] = lambda: False,
                 ready: Optional[Callable[[], bool]] = None,
                 pressure: Optional[Callable[[], float]] = None,
                 selectivity: Optional[Callable[[], Dict[str, float]]] = None,
                 apply_quantum: Optional[Callable[[int], None]] = None,
                 weight: float = 1.0, query_class: Any = None):
        self.name = name
        self.mode = mode
        self._step = step
        self._is_finished = is_finished
        self._ready = ready
        self._pressure = pressure
        self._selectivity = selectivity
        self._apply_quantum = apply_quantum
        self.weight = weight
        self.query_class = query_class
        self.quanta = 0
        self.busy_quanta = 0

    def run_once(self, batch: int = 16) -> StepResult:
        """One quantum; returns the unit's :class:`StepResult`."""
        self.quanta += 1
        result = coerce_step_result(self._step(batch))
        if result.worked:
            self.busy_quanta += 1
        return result

    @property
    def finished(self) -> bool:
        return self._is_finished()

    # -- scheduler hints ---------------------------------------------------
    def ready(self) -> bool:
        if self._ready is None:
            return True
        return bool(self._ready())

    def pressure(self) -> float:
        if self._pressure is None:
            return 0.0
        return float(self._pressure())

    def selectivity_sample(self) -> Optional[Dict[str, float]]:
        if self._selectivity is None:
            return None
        return self._selectivity()

    def apply_quantum(self, quantum: int) -> None:
        if self._apply_quantum is not None:
            self._apply_quantum(quantum)

    @classmethod
    def from_fjord(cls, fjord: Fjord, mode: int = MODE_SINGLE_EDDY,
                   name: str = "", weight: float = 1.0,
                   query_class: Any = None) -> "DispatchUnit":
        return cls(name or fjord.name, mode,
                   step=fjord.step,
                   is_finished=lambda: fjord.finished,
                   ready=fjord.ready,
                   pressure=fjord.pressure,
                   weight=weight, query_class=query_class)

    def __repr__(self) -> str:
        return f"DispatchUnit({self.name}, mode={self.mode})"


class ExecutionObject:
    """One would-be system thread hosting DUs under a local scheduler.

    Any :mod:`repro.sched.policy` plugs in by name or instance:
    ``round_robin`` gives every DU one quantum per pass (the historical
    behaviour), ``busy_first`` favours DUs that made progress last time,
    ``deficit_round_robin`` serves DUs proportionally to their weights,
    and ``pressure_aware`` skips backpressured DUs and throttles
    over-budget query classes with a bounded-starvation guarantee.
    """

    POLICIES = SCHED_POLICIES

    def __init__(self, eo_id: int, policy: Any = "round_robin",
                 quantum_controller: Optional[AdaptiveQuantumController]
                 = None):
        self.eo_id = eo_id
        self.name = f"eo{eo_id}"
        self.scheduler = Scheduler(policy=policy, name=self.name,
                                   quantum_controller=quantum_controller)
        self.policy = self.scheduler.policy.name

    def add(self, du: DispatchUnit) -> None:
        self.scheduler.add(du, weight=getattr(du, "weight", 1.0),
                           query_class=getattr(du, "query_class", None))

    def remove(self, name: str) -> None:
        self.scheduler.remove(name)

    def step(self, batch: int = 16) -> StepResult:
        """One policy-driven pass over the DUs."""
        return self.scheduler.pass_once(batch)

    # -- Schedulable (the executor's top-level scheduler hosts EOs) --------
    def run_once(self, quantum: Optional[int] = None) -> StepResult:
        return self.step(16 if quantum is None else quantum)

    @property
    def finished(self) -> bool:
        # An EO is never *finished*: new DUs fold in at any time.  Its
        # quiescence shows up as IDLE passes instead.
        return False

    def ready(self) -> bool:
        return any(not du.finished and unit_ready(du)
                   for du in self.dispatch_units)

    # -- introspection -----------------------------------------------------
    @property
    def dispatch_units(self) -> List[DispatchUnit]:
        return self.scheduler.units

    @property
    def passes(self) -> int:
        return self.scheduler.passes

    @property
    def live_units(self) -> int:
        return self.scheduler.live_units

    def __repr__(self) -> str:
        return (f"ExecutionObject(#{self.eo_id}, "
                f"{len(self.dispatch_units)} DUs)")


class FootprintClasses:
    """Online union-find over stream names.

    ``class_of(footprint)`` unions the footprint's streams and returns
    the representative — queries whose footprints transitively overlap
    share a class, disjoint ones do not (the paper's initial policy:
    "we create query classes for disjoint sets of footprints").
    """

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}
        self._rank: Dict[str, int] = {}

    def _find(self, stream: str) -> str:
        # Iterative find + full path compression: long-lived servers can
        # accumulate union chains, and recursion would cap the class
        # size at the interpreter's recursion limit.
        parent = self._parent
        if stream not in parent:
            parent[stream] = stream
            self._rank[stream] = 0
            return stream
        root = stream
        while parent[root] != root:
            root = parent[root]
        while parent[stream] != root:
            parent[stream], stream = root, parent[stream]
        return root

    def _union(self, a: str, b: str) -> str:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def class_of(self, footprint: Iterable[str]) -> str:
        streams = list(footprint)
        if not streams:
            raise ExecutionError("empty query footprint")
        root = self._find(streams[0])
        for s in streams[1:]:
            root = self._union(root, s)
        return root

    def peek(self, footprint: Iterable[str]) -> Set[str]:
        """The set of current class representatives the footprint's
        streams belong to, WITHOUT unioning (introspection)."""
        return {self._find(s) for s in footprint}


class Executor:
    """EO manager + the query-plan queue (Figure 5's QPQueue).

    New work arrives via :meth:`enqueue_plan` (from the FrontEnd) and is
    "dynamically folded into the running executor" at the start of the
    next step, as in the paper.  The EOs themselves run under a
    top-level round-robin :class:`repro.sched.Scheduler`, so the whole
    executor is one scheduler tree speaking StepResult end to end.
    """

    def __init__(self, eo_policy: Any = "round_robin",
                 quantum_controller_factory: Optional[
                     Callable[[], AdaptiveQuantumController]] = None):
        self.eo_policy = eo_policy
        self._eos: Dict[str, ExecutionObject] = {}
        self._next_eo_id = itertools.count()
        self.footprints = FootprintClasses()
        #: the QPQueue: (footprint, DU) pairs awaiting fold-in.
        self._plan_queue: Deque[TypingTuple[FrozenSet[str], DispatchUnit]] = \
            deque()
        self._eo_sched = Scheduler(policy="round_robin", name="executor")
        self._quantum_controller_factory = quantum_controller_factory
        self.steps = 0
        self.plans_folded = 0
        self._telemetry = get_registry()
        self._telemetry.register_collector(self._publish_telemetry)

    # -- FrontEnd side ----------------------------------------------------------
    def enqueue_plan(self, footprint: Iterable[str],
                     du: DispatchUnit) -> None:
        self._plan_queue.append((frozenset(footprint), du))

    # -- executor side -----------------------------------------------------------
    def _fold_in_new_plans(self) -> int:
        folded = 0
        while self._plan_queue:
            footprint, du = self._plan_queue.popleft()
            eo = self.eo_for(footprint)
            eo.add(du)
            folded += 1
        self.plans_folded += folded
        return folded

    def _new_eo(self) -> ExecutionObject:
        controller = None
        if self._quantum_controller_factory is not None:
            controller = self._quantum_controller_factory()
        eo = ExecutionObject(next(self._next_eo_id), policy=self.eo_policy,
                             quantum_controller=controller)
        self._eo_sched.add(eo)
        return eo

    def eo_for(self, footprint: Iterable[str]) -> ExecutionObject:
        """The EO responsible for a footprint's query class.

        Unioning may merge previously distinct classes (a new query
        spans two stream groups); their EOs are merged too.
        """
        before = self.footprints.peek(footprint)
        root = self.footprints.class_of(footprint)
        stale = [rep for rep in before if rep != root and rep in self._eos]
        if root not in self._eos:
            # Reuse a merged EO if one exists, else create fresh.
            if stale:
                self._eos[root] = self._eos.pop(stale.pop(0))
            else:
                self._eos[root] = self._new_eo()
        for rep in stale:
            merged = self._eos.pop(rep)
            self._eo_sched.remove(merged.name)
            for du in merged.dispatch_units:
                self._eos[root].add(du)
        return self._eos[root]

    def step(self, batch: int = 16) -> StepResult:
        """One scheduling round over every EO."""
        self.steps += 1
        self._fold_in_new_plans()
        return self._eo_sched.pass_once(batch)

    def run_until_quiescent(self, max_steps: int = 1_000_000,
                            batch: int = 16) -> int:
        return drive(lambda: self.step(batch), max_steps)

    # -- telemetry -----------------------------------------------------------
    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        reg.counter("tcq_executor_steps_total",
                    "Scheduling rounds over every EO",
                    collected=True).set_total(self.steps)
        reg.counter("tcq_executor_plans_folded_total",
                    "DUs folded in from the QPQueue",
                    collected=True).set_total(self.plans_folded)
        reg.gauge("tcq_executor_eos", "Live Execution Objects",
                  collected=True).set(len(self._eos))
        reg.gauge("tcq_executor_dus", "Dispatch Units across all EOs",
                  collected=True).set(
            sum(len(eo.dispatch_units) for eo in self._eos.values()))
        passes = reg.counter("tcq_executor_eo_passes_total",
                             "Scheduler passes per EO", ("eo",),
                             collected=True)
        quanta = reg.counter("tcq_executor_du_quanta_total",
                             "Quanta run per DU", ("eo", "du"),
                             collected=True)
        busy = reg.gauge("tcq_executor_du_busy_ratio",
                         "Fraction of a DU's quanta that made progress",
                         ("eo", "du"), collected=True)
        for root, eo in self._eos.items():
            passes.labels(str(root)).set_total(eo.passes)
            for du in eo.dispatch_units:
                quanta.labels(str(root), du.name).set_total(du.quanta)
                busy.labels(str(root), du.name).set(
                    du.busy_quanta / du.quanta if du.quanta else 0.0)

    # -- introspection -------------------------------------------------------
    @property
    def execution_objects(self) -> List[ExecutionObject]:
        return list(self._eos.values())

    def stats(self) -> Dict[str, object]:
        return {
            "eos": len(self._eos),
            "dus": sum(len(eo.dispatch_units) for eo in self._eos.values()),
            "steps": self.steps,
            "per_eo": {
                str(root): {
                    "dus": [du.name for du in eo.dispatch_units],
                    "passes": eo.passes,
                }
                for root, eo in self._eos.items()
            },
        }
