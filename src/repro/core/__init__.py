"""core subpackage of the TelegraphCQ reproduction."""
