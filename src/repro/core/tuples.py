"""Tuples, schemas, and lineage — the currency of every dataflow module.

TelegraphCQ routes *individual tuples* between operators, so each tuple
carries a small amount of routing state ("lineage", Section 2.2 and 3.1 of
the paper):

* ``done`` — a bitmap recording which eddy-connected modules have already
  processed the tuple, so the routing policy never revisits a module;
* ``queries`` — a bitmap of continuous queries that are still interested
  in the tuple (CACQ tuple lineage).  A cleared bit means some predicate
  of that query rejected the tuple.

Schemas are deliberately lightweight: a named, ordered list of columns.
Joins concatenate schemas; the resulting *composite* tuple remembers the
set of sources it spans, which is what a SteM needs to distinguish build
tuples (``sources == {T}``) from probe tuples (``T not in sources``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple as TypingTuple

from repro.core import columnar
from repro.core.columnar import ColumnStore
from repro.errors import SchemaError

_tuple_ids = itertools.count()


@dataclass(frozen=True)
class Column:
    """A single named, typed column of a schema.

    ``dtype`` is advisory (used for validation when constructing tuples
    with ``Schema.make``); the engine itself is dynamically typed, like
    the paper's enhanced surrogate objects.
    """

    name: str
    dtype: type = object

    def __str__(self) -> str:
        return f"{self.name}:{self.dtype.__name__}"


class Schema:
    """An ordered set of columns belonging to one or more sources.

    A schema over a base stream has a single source (its stream name).
    Joining two tuples produces a schema whose source set is the union;
    column names are qualified (``source.column``) when ambiguous.
    """

    __slots__ = ("columns", "sources", "_index", "name")

    def __init__(self, columns: Sequence[Column], sources: Iterable[str] = (),
                 name: str = ""):
        self.columns: TypingTuple[Column, ...] = tuple(columns)
        self.sources: frozenset = frozenset(sources) or (
            frozenset({name}) if name else frozenset())
        self.name = name
        self._index: Dict[str, int] = {}
        for i, col in enumerate(self.columns):
            if col.name in self._index:
                raise SchemaError(f"duplicate column name {col.name!r}")
            self._index[col.name] = i
        # Allow unqualified access where unambiguous: "price" resolves to
        # "S.price" if exactly one column has that suffix.
        suffix_counts: Dict[str, int] = {}
        for col in self.columns:
            if "." in col.name:
                suffix_counts.setdefault(col.name.rsplit(".", 1)[1], 0)
                suffix_counts[col.name.rsplit(".", 1)[1]] += 1
        for col in self.columns:
            if "." in col.name:
                suffix = col.name.rsplit(".", 1)[1]
                if suffix_counts[suffix] == 1 and suffix not in self._index:
                    self._index[suffix] = self._index[col.name]

    @classmethod
    def of(cls, name: str, *column_names: str) -> "Schema":
        """Convenience constructor: ``Schema.of("S", "a", "b")``."""
        return cls([Column(c) for c in column_names], name=name)

    def index_of(self, column: str) -> int:
        """Return the position of ``column``, raising :class:`SchemaError`
        if the schema does not contain it.

        Qualified names (``S.price``) resolve against a single-source
        schema for stream ``S`` even though its columns are stored
        unqualified, so predicates written against join output also
        apply to base tuples.
        """
        idx = self._index.get(column)
        if idx is not None:
            return idx
        idx = self._qualified_fallback(column)
        if idx is not None:
            return idx
        raise SchemaError(
            f"schema {set(self.sources) or self.name} has no column "
            f"{column!r}; columns are {[c.name for c in self.columns]}")

    def _qualified_fallback(self, column: str) -> Optional[int]:
        if "." not in column or len(self.sources) != 1:
            return None
        prefix, suffix = column.rsplit(".", 1)
        if prefix in self.sources:
            return self._index.get(suffix)
        return None

    def has_column(self, column: str) -> bool:
        if column in self._index:
            return True
        return self._qualified_fallback(column) is not None

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def make(self, *values: Any, timestamp: Optional[int] = None) -> "Tuple":
        """Build a tuple of this schema, validating arity and dtypes."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"expected {len(self.columns)} values, got {len(values)}")
        for col, val in zip(self.columns, values):
            if col.dtype is not object and val is not None \
                    and not isinstance(val, col.dtype):
                raise SchemaError(
                    f"column {col.name!r} expects {col.dtype.__name__}, "
                    f"got {type(val).__name__} ({val!r})")
        return Tuple(self, tuple(values), timestamp=timestamp)

    def join(self, other: "Schema") -> "Schema":
        """Concatenate with ``other``.

        Every not-yet-qualified column is qualified with its owning
        source label so join predicates written as ``S.col == T.col``
        always resolve; unqualified access remains available for
        suffixes that stay unambiguous (see ``__init__``).
        """
        cols: List[Column] = []
        for schema in (self, other):
            label = schema.name or "|".join(sorted(schema.sources)) or "x"
            for col in schema.columns:
                if "." not in col.name:
                    cols.append(Column(f"{label}.{col.name}", col.dtype))
                else:
                    cols.append(col)
        return Schema(cols, sources=self.sources | other.sources)

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns and self.sources == other.sources

    def __hash__(self) -> int:
        return hash((self.columns, self.sources))

    def __repr__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        return f"Schema<{'|'.join(sorted(self.sources))}>({cols})"


class Tuple:
    """A data tuple plus its routing lineage.

    Tuples are *logically* immutable in their values; the lineage fields
    (``done``, ``queries``) mutate as the tuple moves through an eddy,
    exactly as in the paper where "each tuple must have some additional
    state with which it is associated".
    """

    __slots__ = ("schema", "values", "timestamp", "done", "queries", "tid",
                 "base_ids", "max_base", "dead", "trace")

    def __init__(self, schema: Schema, values: TypingTuple[Any, ...],
                 timestamp: Optional[int] = None, done: int = 0,
                 queries: int = -1):
        self.schema = schema
        self.values = values
        self.timestamp = timestamp
        self.done = done          # bitmap of eddy modules already visited
        self.queries = queries    # CACQ lineage: -1 == all queries alive
        self.tid = next(_tuple_ids)
        # Sampled observability: None for the untraced majority; set by
        # Tracer.maybe_start at ingress, read (one slot load) at every
        # instrumented hop.
        self.trace = None
        # Join lineage: which base tuples this (possibly composite) tuple
        # was assembled from.  None means "just myself" — kept lazy so
        # base-tuple creation stays cheap.
        self.base_ids: Optional[frozenset] = None
        self.max_base = self.tid
        # Set by a failed filter after the tuple was already built into a
        # SteM: probes skip dead tuples, keeping eddy plans consistent
        # with selection semantics no matter the routing order chosen.
        self.dead = False

    def base_id_set(self) -> frozenset:
        """The set of constituent base tuple ids (for output dedup)."""
        if self.base_ids is None:
            return frozenset((self.tid,))
        return self.base_ids

    def __getitem__(self, column: str) -> Any:
        return self.values[self.schema.index_of(column)]

    def get(self, column: str, default: Any = None) -> Any:
        # Single dict probe on the hot path (predicate evaluation calls
        # this once per tuple per factor); the qualified-name fallback
        # only runs for names the schema does not hold directly.
        idx = self.schema._index.get(column)
        if idx is None:
            idx = self.schema._qualified_fallback(column)
            if idx is None:
                return default
        return self.values[idx]

    @property
    def sources(self) -> frozenset:
        """The set of base streams this (possibly composite) tuple spans."""
        return self.schema.sources

    def mark_done(self, module_bit: int) -> None:
        """Record that the eddy module with bitmask ``module_bit`` has
        finished with this tuple."""
        self.done |= module_bit

    def is_done(self, all_bits: int) -> bool:
        """True once every module in ``all_bits`` has handled the tuple."""
        return self.done & all_bits == all_bits

    def kill_query(self, query_bit: int) -> None:
        """CACQ lineage: drop query ``query_bit`` from the interested set."""
        if self.queries == -1:
            raise ValueError(
                "tuple lineage not initialised for per-query tracking; "
                "set t.queries to a concrete bitmap first")
        self.queries &= ~query_bit

    def concat(self, other: "Tuple", schema: Optional[Schema] = None) -> "Tuple":
        """Concatenate with ``other`` to form a join-result tuple.

        The result timestamp is the max of the inputs (the instant at
        which the match could first exist); lineage bitmaps are
        intersected, because a join output is only alive for queries that
        both inputs are still alive for.
        """
        joined_schema = schema if schema is not None else \
            self.schema.join(other.schema)
        ts = None
        if self.timestamp is not None or other.timestamp is not None:
            ts = max(self.timestamp or 0, other.timestamp or 0)
        out = Tuple(joined_schema, self.values + other.values, timestamp=ts)
        out.queries = self.queries & other.queries
        # A join result has already been through every module either of
        # its parents has visited, and descends from both lineages.
        out.done = self.done | other.done
        out.base_ids = self.base_id_set() | other.base_id_set()
        out.max_base = max(self.max_base, other.max_base)
        # A composite continues the trace of a sampled parent (probe
        # side wins when both are sampled, keeping one linear story).
        out.trace = self.trace if self.trace is not None else other.trace
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {c.name: v for c, v in zip(self.schema.columns, self.values)}

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        """Value equality: same schema shape and same values.

        Lineage and tid are deliberately excluded — two tuples carrying
        the same data are equal regardless of their routing history.
        """
        if not isinstance(other, Tuple):
            return NotImplemented
        return (self.values == other.values
                and self.schema.sources == other.schema.sources
                and self.timestamp == other.timestamp)

    def __hash__(self) -> int:
        return hash((self.values, self.schema.sources, self.timestamp))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{c.name}={v!r}" for c, v in zip(self.schema.columns, self.values))
        ts = f" @{self.timestamp}" if self.timestamp is not None else ""
        return f"Tuple({pairs}{ts})"


class TupleBatch:
    """A columnar batch of same-schema tuples with shared routing lineage.

    Section 4.3 names batching as the remedy for per-tuple routing
    overhead; a :class:`TupleBatch` makes the batch *first-class data*
    (MonetDB/X100-style vectorized execution) instead of merely
    amortizing the routing decision.  Values are stored as parallel
    per-column lists, so predicate kernels scan one Python list instead
    of doing a schema lookup plus attribute chase per tuple.

    Lineage is batch-granular: every row in a batch shares one ``done``
    bitmap and one ``queries`` bitmap, which holds by construction
    because the eddy routes whole batches and partitions them on
    pass/fail.  When row identity matters — the batch was built into a
    SteM, so stored tuples alias the batch's rows — the batch becomes
    *row-backed*: :meth:`materialize` caches row tuples, and lineage
    updates (:meth:`mark_done`, :meth:`mark_dead`) propagate to them so
    the per-tuple and vectorized paths observe identical state.

    Columns live in a :class:`~repro.core.columnar.ColumnStore`: each
    may be lazily promoted to a read-only numpy array (kernels ask via
    :meth:`column_array`), with a pure-python list fallback when numpy
    is absent or the values are mixed/nullable.  ``batch.columns`` is
    preserved as a list-of-lists *view* for compatibility — treat it as
    read-only; array-backed columns hand out cached copies, so writes
    to the view would be silently lost.
    """

    __slots__ = ("schema", "store", "timestamps", "done", "queries",
                 "_rows", "traces")

    def __init__(self, schema: Schema, columns: Any,
                 timestamps: Optional[List[Optional[int]]] = None,
                 done: int = 0, queries: int = -1,
                 rows: Optional[List["Tuple"]] = None,
                 traces: TypingTuple[Any, ...] = ()):
        self.schema = schema
        self.store: ColumnStore = columns if isinstance(columns, ColumnStore) \
            else ColumnStore(columns)
        if timestamps is None:
            timestamps = [None] * self.store.n_rows()
        self.timestamps = timestamps
        self.done = done
        self.queries = queries
        self._rows = rows
        # The trace contexts of any sampled rows in this batch (usually
        # empty): batch-level hops fan out to these, so a sampled tuple
        # keeps its story even while travelling vectorized.
        self.traces = traces

    @property
    def columns(self) -> List[List[Any]]:
        """Per-column value lists (a read-only compatibility view)."""
        return self.store.as_lists()

    # -- construction ------------------------------------------------------
    @classmethod
    def from_tuples(cls, tuples: Sequence["Tuple"],
                    schema: Optional[Schema] = None,
                    retain_rows: bool = True) -> "TupleBatch":
        """Build a batch from existing tuples.

        All tuples must share one schema and (because lineage is packed
        batch-wide) the same ``done``/``queries`` bitmaps — true for any
        run of freshly ingested base tuples, which is where batches are
        formed.

        By default the batch is *row-backed*: it keeps the source tuples
        so lineage updates stay visible through any outside aliases (a
        SteM that stored them, a client holding a handle).  Ingress
        paths that just minted the tuples and hand over sole ownership
        should pass ``retain_rows=False`` to get a *column-backed* batch
        instead — values are copied out and the row objects dropped, so
        downstream partitions skip all per-row bookkeeping and stay on
        the array fast path.
        """
        rows = list(tuples)
        if not rows:
            if schema is None:
                raise SchemaError("an empty TupleBatch needs an explicit "
                                  "schema")
            return cls(schema, [[] for _ in schema.columns], [])
        schema = schema if schema is not None else rows[0].schema
        done, queries = rows[0].done, rows[0].queries
        for t in rows:
            if t.done != done or t.queries != queries:
                raise SchemaError(
                    "TupleBatch rows must share one done/queries lineage; "
                    "group divergent tuples into separate batches")
        columns = [list(col) for col in zip(*(t.values for t in rows))]
        if not columns:            # zero-column schema: keep arity
            columns = [[] for _ in schema.columns]
        return cls(schema, columns, [t.timestamp for t in rows],
                   done=done, queries=queries,
                   rows=rows if retain_rows else None,
                   traces=tuple(t.trace for t in rows
                                if t.trace is not None))

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def sources(self) -> frozenset:
        return self.schema.sources

    def column(self, name: str) -> List[Any]:
        """The value list for ``name`` (qualified fallback as in
        :meth:`Schema.index_of`); always python scalars."""
        return self.store.values(self.schema.index_of(name))

    def column_array(self, name: str) -> Optional[Any]:
        """Column ``name`` as a read-only numpy array, or ``None`` when
        the column is unpromotable (mixed types, ``None``, no numpy)."""
        return self.store.array(self.schema.index_of(name))

    # -- lineage -----------------------------------------------------------
    def mark_done(self, module_bit: int) -> None:
        self.done |= module_bit
        if self._rows is not None:
            # Stored copies in SteMs alias these rows: keep them in sync
            # so composites inherit the same done-bits as per-tuple mode.
            done = self.done
            for r in self._rows:
                r.done = done

    def mark_dead(self) -> None:
        """A failed filter kills the rows; only matters when rows may
        already live inside a SteM (i.e. the batch is row-backed)."""
        if self._rows is not None:
            for r in self._rows:
                r.dead = True

    # -- row access --------------------------------------------------------
    def representative(self) -> "Tuple":
        """One row standing in for the whole batch: routing predicates
        (``applies_to``, ``must_run_first``) depend only on schema,
        sources, and the shared lineage, all uniform across the batch."""
        if self._rows is not None:
            return self._rows[0]
        t = Tuple(self.schema, self.store.row(0),
                  timestamp=self.timestamps[0])
        t.done = self.done
        t.queries = self.queries
        return t

    def materialize(self) -> List["Tuple"]:
        """Row tuples for this batch, created lazily and cached (so SteM
        builds and later lineage updates see the same objects).

        Values come through the store's list views, so materialized rows
        always hold python scalars even for array-backed columns."""
        if self._rows is None:
            schema = self.schema
            done = self.done
            queries = self.queries
            rows: List[Tuple] = []
            for i, values in enumerate(zip(*self.store.as_lists())):
                t = Tuple(schema, values, timestamp=self.timestamps[i])
                t.done = done
                t.queries = queries
                rows.append(t)
            self._rows = rows
        return self._rows

    # -- partitioning ------------------------------------------------------
    def _subset(self, indexes: List[int], store: ColumnStore) -> "TupleBatch":
        """A new batch over ``store`` holding rows at ``indexes``.

        Row-backed batches subset the cached row objects too: those rows
        may alias SteM-stored tuples, and a slice must keep pointing at
        the SAME objects so lineage updates stay visible everywhere."""
        rows = None
        traces: TypingTuple[Any, ...] = ()
        if self._rows is not None:
            rows = [self._rows[i] for i in indexes]
            traces = tuple(t.trace for t in rows if t.trace is not None)
        return TupleBatch(self.schema, store,
                          [self.timestamps[i] for i in indexes],
                          done=self.done, queries=self.queries, rows=rows,
                          traces=traces)

    def take(self, indexes: Sequence[int]) -> "TupleBatch":
        """A new batch holding the rows at ``indexes`` (in order)."""
        idx = list(indexes)
        return self._subset(idx, self.store.take(idx))

    def slice(self, start: int, stop: int) -> "TupleBatch":
        """Contiguous row range [start, stop) — zero-copy for array
        columns (the child views the parent's buffers)."""
        rows = self._rows[start:stop] if self._rows is not None else None
        traces: TypingTuple[Any, ...] = ()
        if rows:
            traces = tuple(t.trace for t in rows if t.trace is not None)
        return TupleBatch(self.schema, self.store.slice(start, stop),
                          self.timestamps[start:stop],
                          done=self.done, queries=self.queries, rows=rows,
                          traces=traces)

    def partition(self, mask: Any) -> \
            "TypingTuple[TupleBatch, TupleBatch]":
        """Split into (pass, fail) batches under a selection vector.

        ``mask`` may be a python bool list or a numpy bool array (the
        output of a ufunc kernel); array masks partition array-backed
        columns without a python loop."""
        if columnar.mask_all(mask):
            return self, TupleBatch.from_tuples((), schema=self.schema)
        if self._rows is None and columnar.is_array(mask):
            # Column-backed batch under an array mask: there are no row
            # objects or traces to carry over, so the split needs no
            # per-row index lists — columns compress through numpy and
            # timestamps through itertools at C speed.
            inv = columnar.mask_invert(mask)
            ts = self.timestamps
            return (TupleBatch(self.schema, self.store.select(mask),
                               list(itertools.compress(ts, mask.tolist())),
                               done=self.done, queries=self.queries),
                    TupleBatch(self.schema, self.store.select(inv),
                               list(itertools.compress(ts, inv.tolist())),
                               done=self.done, queries=self.queries))
        mlist = columnar.mask_to_list(mask)
        passed = [i for i, ok in enumerate(mlist) if ok]
        failed = [i for i, ok in enumerate(mlist) if not ok]
        if columnar.is_array(mask):
            return (self._subset(passed, self.store.select(mask)),
                    self._subset(failed,
                                 self.store.select(columnar.mask_invert(mask))))
        return (self._subset(passed, self.store.take(passed)),
                self._subset(failed, self.store.take(failed)))

    def __repr__(self) -> str:
        return (f"TupleBatch<{'|'.join(sorted(self.schema.sources))}>"
                f"(n={len(self)})")


@dataclass(frozen=True)
class Punctuation:
    """Control messages that flow through queues alongside data tuples.

    ``END_OF_STREAM`` tells downstream modules that a source is finished;
    the eddy uses it to shut down connected modules (Section 2.2).
    ``WINDOW_BOUNDARY`` separates the output sets of consecutive windows,
    so a client sees the paper's "sequence of sets" (Section 4.1.1).
    """

    kind: str
    source: str = ""
    payload: Any = None

    END_OF_STREAM = "eos"
    WINDOW_BOUNDARY = "window"

    @classmethod
    def eos(cls, source: str = "") -> "Punctuation":
        return cls(cls.END_OF_STREAM, source)

    @classmethod
    def window_boundary(cls, payload: Any = None) -> "Punctuation":
        return cls(cls.WINDOW_BOUNDARY, payload=payload)


def is_eos(item: Any) -> bool:
    """True when ``item`` is an end-of-stream punctuation."""
    return isinstance(item, Punctuation) and item.kind == Punctuation.END_OF_STREAM
