"""A command-line client for the TelegraphCQ server.

Section 2: "Client communication to Telegraph can be done via TCP/IP
sockets ... or via local command-line interfaces."  This is the local
interface: an interactive shell (or script runner) speaking the query
language plus a small set of control commands.

Commands (each statement ends with ``;``):

    CREATE STREAM name (col, col, ...);
    CREATE TABLE name (col, ...);
    INSERT INTO table VALUES (v, v, ...);
    PUSH stream v, v, ... [@ timestamp];
    CLOSE STREAM name;
    SELECT ...;                 -- snapshot results print immediately;
                                -- continuous/windowed queries get a
                                -- cursor id
    CHECK SELECT ...;           -- static plan verification only: print
                                -- diagnostics, submit nothing
    FETCH n;                    -- drain cursor n
    CANCEL n;                   -- cancel continuous cursor n
    EXPLAIN [ANALYZE] n;        -- de-facto plan behind cursor n
    EXPLAIN [ANALYZE] SELECT..; -- submit, then explain the new cursor
    TRACE ON [n];               -- trace every nth ingress tuple and
                                -- record routing decisions (default 16)
    TRACE OFF;                  -- stop tracing/recording
    TRACE DUMP [n] [file];      -- last n traces as JSON-lines
    STEP [k];                   -- run k executor rounds (default 1)
    RUN;                        -- run the executor to quiescence
    STATS;                      -- engine statistics (incl. LATENCY
                                -- watermarks while tracing is on)
    HELP; QUIT;

Run interactively:  python -m repro.cli
Run a script:       python -m repro.cli script.tcq
Dial a service:     python -m repro.cli tcp://host:port [script.tcq]

The shell drives everything through :func:`repro.client.connect`, so
the same statements run against an in-process engine (the default) or a
remote :class:`~repro.net.service.TelegraphCQService`.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional

from repro.client import Connection, LocalConnection, connect
from repro.core.tuples import Tuple
from repro.errors import TelegraphError
import repro.monitor.introspect as introspect
import repro.monitor.tracing as tracing


def _parse_value(raw: str) -> Any:
    raw = raw.strip()
    if raw.startswith(("'", '"')) and raw.endswith(raw[0]) and len(raw) >= 2:
        return raw[1:-1]
    for caster in (int, float):
        try:
            return caster(raw)
        except ValueError:
            continue
    return raw


def _format_rows(rows: List[Tuple], limit: int = 50) -> str:
    if not rows:
        return "(no rows)"
    header = rows[0].schema.column_names()
    body = [[str(v) for v in t.values] for t in rows[:limit]]
    widths = [max(len(h), *(len(r[i]) for r in body))
              for i, h in enumerate(header)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in body]
    if len(rows) > limit:
        lines.append(f"... ({len(rows) - limit} more)")
    return "\n".join(lines)


def _split_statements(text: str):
    """Split a buffer into complete ';'-terminated statements plus the
    unterminated remainder.

    Semicolons nested in parentheses or braces (the windowed for-loop:
    ``for (t = 1; t <= N; t++) { WindowIs(...); }``) or inside string
    literals do not terminate a statement, so windowed queries work
    through the shell."""
    statements: List[str] = []
    start = 0
    depth = 0
    quote = ""
    for i, ch in enumerate(text):
        if quote:
            if ch == quote:
                quote = ""
        elif ch in "'\"":
            quote = ch
        elif ch in "{(":
            depth += 1
        elif ch in "})":
            depth = max(0, depth - 1)
        elif ch == ";" and depth == 0:
            statements.append(text[start:i])
            start = i + 1
    return statements, text[start:]


class TelegraphShell:
    """Stateful statement interpreter over one connection.

    ``execute`` returns the printable response for one statement, so
    the shell is fully testable without a TTY.  Pass a
    :class:`~repro.client.Connection` (or a ``server`` to wrap in a
    :class:`~repro.client.LocalConnection`) — by default the shell opens
    a local in-process engine through :func:`repro.client.connect`.
    """

    def __init__(self, connection: Optional[Connection] = None,
                 server: Optional[Any] = None):
        if connection is None:
            connection = LocalConnection(server=server) if server \
                else connect()
        self.conn = connection
        self.cursors: Dict[int, Any] = {}
        self.done = False

    # -- statement dispatch ------------------------------------------------
    def execute(self, statement: str) -> str:
        statement = statement.strip().rstrip(";").strip()
        if not statement:
            return ""
        try:
            return self._dispatch(statement)
        except TelegraphError as exc:
            return f"error: {exc}"

    def _dispatch(self, statement: str) -> str:
        upper = statement.upper()
        if upper in ("QUIT", "EXIT"):
            self.done = True
            return "bye"
        if upper == "HELP":
            return __doc__.split("Commands", 1)[1]
        if upper == "STATS":
            return self._stats()
        if upper == "RUN":
            steps = self.conn.run()
            return f"quiescent after {steps} step(s)"
        if upper.startswith("STEP"):
            return self._step(statement)
        if upper.startswith("CREATE STREAM"):
            return self._create(statement, stream=True)
        if upper.startswith("CREATE TABLE"):
            return self._create(statement, stream=False)
        if upper.startswith("INSERT INTO"):
            return self._insert(statement)
        if upper.startswith("PUSH"):
            return self._push(statement)
        if upper.startswith("CLOSE STREAM"):
            name = statement.split()[2]
            self.conn.close_stream(name)
            return f"stream {name} closed"
        if upper.startswith("FETCH"):
            return self._fetch(statement)
        if upper.startswith("CANCEL"):
            return self._cancel(statement)
        if upper.startswith("EXPLAIN"):
            return self._explain(statement)
        if upper.startswith("TRACE"):
            return self._trace(statement)
        if upper.startswith("CHECK"):
            return self._check(statement)
        if upper.startswith("SELECT"):
            return self._select(statement)
        return f"error: unrecognised statement {statement.split()[0]!r}"

    # -- DDL / DML -------------------------------------------------------------
    def _create(self, statement: str, stream: bool) -> str:
        open_paren = statement.find("(")
        close_paren = statement.rfind(")")
        if open_paren == -1 or close_paren == -1:
            raise TelegraphError(
                "CREATE needs a column list: CREATE STREAM s (a, b);")
        name = statement[:open_paren].split()[2]
        columns = [c.strip() for c in
                   statement[open_paren + 1:close_paren].split(",")
                   if c.strip()]
        if stream:
            self.conn.create_stream(name, *columns)
            return f"stream {name} ({', '.join(columns)})"
        self.conn.create_table(name, *columns)
        return f"table {name} ({', '.join(columns)})"

    def _insert(self, statement: str) -> str:
        upper = statement.upper()
        values_at = upper.find("VALUES")
        if values_at == -1:
            raise TelegraphError("INSERT INTO t VALUES (v, ...);")
        table = statement[len("INSERT INTO"):values_at].strip()
        raw = statement[values_at + len("VALUES"):].strip()
        if raw.startswith("(") and raw.endswith(")"):
            raw = raw[1:-1]
        values = [_parse_value(v) for v in raw.split(",")]
        self.conn.insert(table, *values)
        return "1 row"

    def _push(self, statement: str) -> str:
        body = statement[len("PUSH"):].strip()
        timestamp = None
        if "@" in body:
            body, _at, ts_text = body.rpartition("@")
            timestamp = int(ts_text.strip())
        parts = body.strip().split(None, 1)
        if len(parts) != 2:
            raise TelegraphError("PUSH stream v, v, ... [@ ts];")
        stream, raw_values = parts
        values = [_parse_value(v) for v in raw_values.split(",")]
        self.conn.push(stream, *values, timestamp=timestamp)
        self.conn.step()
        return "pushed"

    # -- queries ---------------------------------------------------------------
    def _check(self, statement: str) -> str:
        """``CHECK <SELECT ...>``: run the static plan verifier and print
        the full diagnostic report without submitting the query."""
        query = statement[len("CHECK"):].strip()
        if not query:
            raise TelegraphError("usage: CHECK <SELECT ...>;")
        return self.conn.check(query).render()

    def _select(self, statement: str) -> str:
        cursor = self.conn.submit(statement)
        if cursor.kind == "snapshot":
            return _format_rows(cursor.fetch())
        self.cursors[cursor.cursor_id] = cursor
        return (f"cursor {cursor.cursor_id} open "
                f"({cursor.kind} query); FETCH {cursor.cursor_id}; "
                f"to read results")

    def _fetch(self, statement: str) -> str:
        cursor = self._cursor_of(statement)
        if cursor.kind == "windowed":
            windows = cursor.fetch_windows()
            if not windows:
                return "(no complete windows yet)"
            blocks = []
            for t, rows in windows:
                blocks.append(f"-- window t={t} ({len(rows)} rows)")
                blocks.append(_format_rows(rows))
            return "\n".join(blocks)
        rows = cursor.fetch()
        return _format_rows(rows)

    def _cancel(self, statement: str) -> str:
        cursor = self._cursor_of(statement)
        self.conn.cancel(cursor)
        return f"cursor {cursor.cursor_id} cancelled"

    def _explain(self, statement: str) -> str:
        body = statement[len("EXPLAIN"):].strip()
        analyze = False
        if body.upper().startswith("ANALYZE"):
            analyze = True
            body = body[len("ANALYZE"):].strip()
        if body.isdigit():
            cursor = self.cursors.get(int(body))
            if cursor is None:
                raise TelegraphError(f"no cursor {body}")
        elif body.upper().startswith("SELECT"):
            cursor = self.conn.submit(body)
            if cursor.kind != "snapshot":
                self.cursors[cursor.cursor_id] = cursor
        else:
            raise TelegraphError(
                "EXPLAIN [ANALYZE] <cursor-id | SELECT ...>;")
        report = self.conn.explain(cursor, analyze=analyze)
        return introspect.render_explain(report)

    def _trace(self, statement: str) -> str:
        parts = statement.split()
        sub = parts[1].upper() if len(parts) > 1 else ""
        tracer = tracing.get_tracer()
        recorder = introspect.get_flight_recorder()
        if sub == "ON":
            every = int(parts[2]) if len(parts) > 2 else 16
            tracer.configure(sample_every=every)
            recorder.enable()
            if every:
                return (f"tracing every {every}th ingress tuple; "
                        f"flight recorder on")
            return "sampling disabled; flight recorder on"
        if sub == "OFF":
            tracer.configure(sample_every=0)
            recorder.disable()
            return "tracing off; flight recorder off"
        if sub == "DUMP":
            rest = parts[2:]
            n = 0
            if rest and rest[0].isdigit():
                n = int(rest[0])
                rest = rest[1:]
            traces = tracer.recent(n)
            text = tracer.export_jsonl(traces)
            if rest:
                path = rest[0]
                with open(path, "w") as f:
                    f.write(text + ("\n" if text else ""))
                return f"wrote {len(traces)} trace(s) to {path}"
            return text if text else "(no traces)"
        raise TelegraphError(
            "TRACE ON [n]; TRACE OFF; or TRACE DUMP [n] [file];")

    def _cursor_of(self, statement: str) -> Any:
        parts = statement.split()
        if len(parts) != 2 or not parts[1].isdigit():
            raise TelegraphError(f"{parts[0]} needs a cursor id")
        cursor = self.cursors.get(int(parts[1]))
        if cursor is None:
            raise TelegraphError(f"no cursor {parts[1]}")
        return cursor

    # -- control ------------------------------------------------------------------
    def _step(self, statement: str) -> str:
        parts = statement.split()
        k = int(parts[1]) if len(parts) > 1 else 1
        self.conn.step(k)
        return f"stepped {k}"

    def _stats(self) -> str:
        stats = self.conn.stats()
        lines = [f"ingested tuples : {stats['ingested']}",
                 f"standing queries: {stats['continuous_queries']}",
                 f"shared engines  : {stats['cacq_engines']}",
                 f"execution objs  : {stats['executor']['eos']}"]
        for stream, n in stats["streams"].items():
            lines.append(f"stream {stream}: {n} tuples stored")
        snapshot = self.conn.telemetry()
        latency = tracing.latency_by_query(snapshot)
        if latency:
            lines.append("")
            lines.append("LATENCY (ingress->egress, sampled traces)")
            fmt = introspect.format_seconds
            for query in sorted(latency):
                p = latency[query]
                lines.append(
                    f"  {query}: p50={fmt(p['p50'])} p95={fmt(p['p95'])} "
                    f"p99={fmt(p['p99'])} n={int(p['count'])}")
        lines.append("")
        lines.append(f"telemetry ({len(snapshot)} series)")
        for subsystem in snapshot.subsystems():
            samples = snapshot.by_subsystem(subsystem)
            lines.append(f"[{subsystem}]")
            for s in samples:
                label_body = ",".join(
                    f"{k}={v}" for k, v in sorted(s.labels.items()))
                name = f"{s.name}{{{label_body}}}" if label_body else s.name
                if s.kind == "histogram":
                    lines.append(f"  {name} count={s.count} sum={s.sum:g}")
                else:
                    lines.append(f"  {name} = {s.value:g}")
        return "\n".join(lines)

    # -- drivers ------------------------------------------------------------------
    def run_script(self, text: str) -> List[str]:
        """Execute every ';'-terminated statement; returns responses."""
        out = []
        statements, _rest = _split_statements(text)
        for statement in statements:
            if statement.strip():
                out.append(self.execute(statement + ";"))
            if self.done:
                break
        return out

    def repl(self, stdin=None, stdout=None) -> None:  # pragma: no cover
        stdin = stdin or sys.stdin
        stdout = stdout or sys.stdout
        buffer = ""
        stdout.write("TelegraphCQ shell — HELP; for commands\n")
        while not self.done:
            stdout.write("telegraph> " if not buffer else "        -> ")
            stdout.flush()
            line = stdin.readline()
            if not line:
                break
            buffer += line
            statements, buffer = _split_statements(buffer)
            for statement in statements:
                response = self.execute(statement + ";")
                if response:
                    stdout.write(response + "\n")
                if self.done:
                    return


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    argv = sys.argv[1:] if argv is None else argv
    address = None
    if argv and (argv[0].startswith("tcp://") or argv[0] == "local"):
        address, argv = argv[0], argv[1:]
    shell = TelegraphShell(connection=connect(address, client="cli"))
    if argv:
        with open(argv[0]) as f:
            for response in shell.run_script(f.read()):
                if response:
                    print(response)
        return 0
    shell.repl()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
