"""repro — a reproduction of *TelegraphCQ: Continuous Dataflow
Processing for an Uncertain World* (Chandrasekaran et al., CIDR 2003).

The package implements the full TelegraphCQ stack in pure Python:

* **Fjords** (:mod:`repro.fjords`) — the push/pull inter-module queue
  API and the cooperative dataflow scheduler;
* **adaptive core** (:mod:`repro.core`) — eddies, routing policies,
  SteMs, grouped filters, the CACQ shared-CQ engine, PSoup, window
  semantics, the EO/DU executor, and the server facade;
* **query language** (:mod:`repro.query`) — the SQL subset with the
  paper's for-loop ``WindowIs`` clause, catalog, and optimizer;
* **ingress** (:mod:`repro.ingress`) — pull/push source wrappers,
  streamers, and synthetic workload generators;
* **storage** (:mod:`repro.storage`) — buffer pool, pages, and a
  log-structured spill store for out-of-core streams;
* **Flux** (:mod:`repro.flux`) — partitioned-parallel dataflow with
  online repartitioning and process-pair fault tolerance over a
  simulated cluster;
* **Juggle** (:mod:`repro.juggle`) — online reordering by preference;
* **baselines** (:mod:`repro.baselines`) — static plans, per-query CQ
  processing, and a NiagaraCQ-style grouped engine;
* **monitor** (:mod:`repro.monitor`) — runtime statistics, QoS load
  shedding, and the unified telemetry registry
  (:mod:`repro.monitor.telemetry`);
* **net** (:mod:`repro.net`) — the asyncio network service: a framed
  wire protocol, streaming cursors with credit backpressure, and an
  HTTP admin plane;
* **client** (:mod:`repro.client`) — the unified front door.
  ``connect()`` returns an in-process connection;
  ``connect("tcp://host:port")`` returns the same API over the wire.

Quickstart::

    from repro.client import connect

    with connect() as conn:
        conn.create_stream("trades", "sym", "price")
        cursor = conn.submit("SELECT * FROM trades WHERE price > 100")
        conn.push("trades", "MSFT", 101.5)
        print(cursor.fetch())
        print(conn.telemetry().to_prometheus())

Result retrieval — the blessed triad
------------------------------------

Every :class:`Cursor` supports exactly three retrieval styles; pick one
per cursor and stick to it:

* **pull** — ``cursor.fetch(limit=...)`` / ``cursor.fetchall()`` /
  iteration drain buffered results for any query kind (windowed
  cursors yield rows flattened in window order);
* **push** — pass ``on_result=callback`` to ``submit`` (in-process
  connections only) and every result is delivered as it is produced;
* **sequence of sets** — windowed cursors additionally offer
  ``cursor.fetch_windows()`` returning ``(loop_value, rows)`` pairs
  when window boundaries matter.

The three styles behave identically on local and network cursors;
there is no other read surface.  Cursors, connections, and the server
are context managers (``close()`` cancels the underlying query / shuts
the engine down).
"""

from repro.core.adaptivity import AdaptivityController, ControlledEddy
from repro.core.cacq import CACQEngine, ContinuousQuery
from repro.core.eddy import Eddy, EddyOperator, FilterOperator, SteMOperator
from repro.core.engine import ClientProxy, Cursor, TelegraphCQServer
from repro.core.executor import DispatchUnit, ExecutionObject, Executor
from repro.core.grouped_filter import GroupedFilter
from repro.core.psoup import OnDemandPSoup, PSoup, PSoupQuery
from repro.core.routing import (BatchingDirective, FixedPolicy,
                                GreedySelectivityPolicy, LotteryPolicy,
                                RandomPolicy, RankPolicy, RoutingPolicy)
from repro.core.nested_eddy import SubEddyOperator, nested_filter_scope
from repro.core.psoup_spill import PeriodicQuery, SpillingQueryStore
from repro.core.stem import CacheSteM, RendezvousBuffer, SteM
from repro.storage.broadcast import (BroadcastReader, BroadcastSchedule,
                                     expected_wait)
from repro.storage.buffer_pool import BufferPool
from repro.storage.spill import SpillStore
from repro.storage.spooled_stream import SpooledStream
from repro.egress.egress import (FanoutEgress, PullEgress, PushEgress,
                                 TranscodingEgress)
from repro.core.tuples import Column, Punctuation, Schema, Tuple
from repro.core.windows import (ForLoopSpec, HistoricalStore,
                                WindowedQueryRunner, WindowIs)
from repro.errors import (ClusterError, ExecutionError, ParseError,
                          PlanError, QueryError, SchemaError, StorageError,
                          TelegraphError, TelemetryError)
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink, Module, SinkModule, SourceModule
from repro.fjords.queues import ExchangeQueue, FjordQueue, PullQueue, PushQueue
from repro.flux.backend import ClusterBackend, PartitionHandoff, \
    SimulatedBackend, as_backend
from repro.flux.cluster import Cluster, GroupCountState, Machine
from repro.flux.flux import Flux, FluxPump
from repro.flux.parallel_cacq import CACQPartitionState, ParallelCACQ
from repro.flux.procs import LoopbackBackend, MultiprocessBackend
from repro.juggle.juggle import Juggle
from repro.ingress.sensor_proxy import SensorProxy
from repro.ingress.tess import SimulatedWebForm, TessWrapper
from repro.ingress.tag import (CentralizedAggregator, RoutingTree,
                               TagAggregator)
from repro.monitor.qos import LoadShedder
from repro.monitor.telemetry import (MetricRegistry, SeriesSample,
                                     TelemetrySnapshot, get_registry,
                                     set_registry)
from repro.query.catalog import Catalog
from repro.query.dataflow_script import DataflowScript, parse_script
from repro.query.parser import parse, parse_predicate
from repro.query.predicates import (And, ColumnComparison, Comparison, Not,
                                    Or, Predicate)
from repro.sched import (AdaptiveQuantumController, BusyFirstPolicy,
                         DeficitRoundRobinPolicy, FunctionUnit,
                         PressureAwarePolicy, QuiescenceDetector,
                         RoundRobinPolicy, Schedulable, Scheduler,
                         SchedulerStall, SchedulingPolicy, StepResult,
                         make_policy)

__version__ = "1.0.0"

__all__ = [
    "AdaptivityController", "And", "BatchingDirective", "CACQEngine", "CacheSteM", "Catalog",
    "ClientProxy", "Cluster", "ClusterError", "CollectingSink", "Column",
    "ClusterBackend", "ColumnComparison", "Comparison", "ContinuousQuery",
    "Cursor",
    "CentralizedAggregator", "DataflowScript", "DispatchUnit", "Eddy",
    "EddyOperator", "ExchangeQueue",
    "ExecutionError", "ExecutionObject", "Executor", "FanoutEgress",
    "Fjord", "FjordQueue",
    "FilterOperator", "FixedPolicy", "Flux", "FluxPump", "ForLoopSpec",
    "GreedySelectivityPolicy", "GroupCountState", "GroupedFilter",
    "HistoricalStore", "Juggle", "LoadShedder", "LoopbackBackend",
    "LotteryPolicy", "Machine", "Module", "MultiprocessBackend", "Not",
    "OnDemandPSoup", "Or", "ParseError", "PartitionHandoff", "PlanError",
    "Predicate", "PSoup", "PSoupQuery", "PullEgress", "PullQueue",
    "Punctuation", "PushEgress",
    "PushQueue", "QueryError", "RandomPolicy", "RendezvousBuffer",
    "RankPolicy", "RoutingPolicy", "RoutingTree", "Schema", "SchemaError",
    "SensorProxy", "SimulatedBackend", "SinkModule", "SourceModule", "SteM",
    "SteMOperator",
    "StorageError", "TagAggregator", "TelegraphCQServer", "TelegraphError",
    "TelemetryError",
    "TranscodingEgress", "Tuple", "WindowIs", "WindowedQueryRunner",
    "as_backend", "parse", "parse_predicate", "parse_script",
    "BroadcastReader", "BroadcastSchedule", "BufferPool", "PeriodicQuery",
    "SimulatedWebForm", "SpillStore", "SpillingQueryStore",
    "SpooledStream", "SubEddyOperator", "TessWrapper", "expected_wait",
    "nested_filter_scope", "ControlledEddy", "CACQPartitionState",
    "ParallelCACQ", "MetricRegistry", "SeriesSample", "TelemetrySnapshot",
    "get_registry", "set_registry",
    "AdaptiveQuantumController", "BusyFirstPolicy",
    "DeficitRoundRobinPolicy", "FunctionUnit", "PressureAwarePolicy",
    "QuiescenceDetector", "RoundRobinPolicy", "Schedulable", "Scheduler",
    "SchedulerStall", "SchedulingPolicy", "StepResult", "make_policy",
]
