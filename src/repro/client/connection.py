"""The two Connection implementations behind :func:`repro.client.connect`.

:class:`LocalConnection` owns an in-process
:class:`~repro.core.engine.TelegraphCQServer` — it is the *only*
sanctioned constructor of one (lint ``TCQ401``).  Its ``submit`` returns
the engine's own :class:`~repro.core.engine.Cursor`.

:class:`NetworkConnection` speaks the :mod:`repro.net.frames` protocol
over a blocking socket to a running service, returning
:class:`NetworkCursor` objects.  Both cursor kinds expose the same read
surface — ``fetch(limit=)`` / ``fetchall()`` / iteration /
``fetch_windows()`` / ``explain()`` / ``cancel()`` / context manager —
and both connections raise the same :mod:`repro.errors` taxonomy, so
swapping ``connect()`` for ``connect("tcp://...")`` changes *where* the
engine runs and nothing else.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.report import Diagnostic, DiagnosticReport
from repro.core.tuples import Schema, Tuple
from repro.errors import (ConnectionClosedError, ProtocolError, QueryError,
                          error_from_wire)
from repro.net.frames import (ERROR, MAX_FRAME, RESULT, STREAM_ROW,
                              FrameDecoder, encode_frame, rows_from_wire,
                              windows_from_wire)


def _as_schema(name_or_schema: Union[str, Schema],
               columns: Sequence[str]) -> Schema:
    if isinstance(name_or_schema, Schema):
        return name_or_schema
    return Schema.of(name_or_schema, *columns)


class Connection:
    """The surface both implementations provide (documentation base;
    satisfaction is structural, like the repo's other protocols)."""

    def submit(self, query: str, **kwargs) -> Any:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalConnection(Connection):
    """An in-process engine behind the unified API."""

    def __init__(self, server: Optional[Any] = None,
                 client: str = "default", **server_kwargs):
        if server is None:
            # The one sanctioned construction site (TCQ401).
            from repro.core.engine import TelegraphCQServer
            server = TelegraphCQServer(**server_kwargs)
        self.server = server
        self.client = client
        self.closed = False

    # -- DDL / ingress -----------------------------------------------------
    def create_stream(self, name_or_schema: Union[str, Schema],
                      *columns: str) -> None:
        self.server.create_stream(_as_schema(name_or_schema, columns))

    def create_table(self, name_or_schema: Union[str, Schema],
                     *columns: str,
                     rows: Sequence[Sequence[Any]] = ()) -> None:
        self.server.create_table(_as_schema(name_or_schema, columns),
                                 rows=rows)

    def insert(self, table: str, *values: Any) -> None:
        entry = self.server.catalog.lookup(table)
        if entry.is_stream:
            raise QueryError(f"{table!r} is a stream; use PUSH instead")
        rows = self.server.tables[table]
        rows.append(entry.schema.make(*values, timestamp=len(rows)))

    def push(self, stream: str, *values: Any,
             timestamp: Optional[int] = None) -> None:
        self.server.push(stream, *values, timestamp=timestamp)

    def push_tuple(self, stream: str, t: Tuple) -> None:
        self.server.push_tuple(stream, t)

    def push_rows(self, stream: str, rows: Sequence[Sequence[Any]],
                  timestamp: Optional[int] = None) -> Dict[str, Any]:
        """Batch ingress; mirrors the network PUSH reply shape (nothing
        is shed in-process — there is no wire to fall behind on)."""
        for i, row in enumerate(rows):
            ts = None if timestamp is None else timestamp + i
            self.server.push(stream, *row, timestamp=ts)
        return {"pushed": len(rows), "shed": 0}

    def close_stream(self, stream: str) -> None:
        self.server.close_stream(stream)

    # -- queries -----------------------------------------------------------
    def submit(self, query: str,
               on_result: Optional[Callable[[Tuple], None]] = None,
               env: Optional[Dict[str, int]] = None,
               allow_unsafe: bool = False, stream: bool = False,
               credit: int = 0) -> Any:
        # ``stream``/``credit`` shape network delivery; locally every
        # cursor is already push-fed, so they are accepted and ignored.
        return self.server.submit(query, client=self.client,
                                  on_result=on_result, env=env,
                                  allow_unsafe=allow_unsafe)

    def cancel(self, cursor: Any) -> None:
        cursor.close()

    def explain(self, cursor: Any, analyze: bool = False) -> Dict[str, Any]:
        return self.server.explain(cursor, analyze=analyze)

    def check(self, query: str) -> DiagnosticReport:
        from repro.analysis.plan_check import check_query
        return check_query(query, self.server.catalog,
                           self.server._admission_context())

    # -- driving / observability -------------------------------------------
    def step(self, k: int = 1) -> int:
        worked = 0
        for _ in range(max(1, k)):
            if self.server.step():
                worked += 1
        return worked

    def run(self) -> int:
        return self.server.run_until_quiescent()

    def stats(self) -> Dict[str, Any]:
        return self.server.stats()

    def telemetry(self) -> Any:
        return self.server.telemetry()

    def open_cursors(self) -> List[Any]:
        return self.server.open_cursors()

    def close(self) -> None:
        if not self.closed:
            self.server.close()
            self.closed = True

    def __repr__(self) -> str:
        return f"LocalConnection(client={self.client!r})"


class NetworkCursor:
    """A client-side handle on one cursor living in the service.

    Mirrors the engine cursor's read surface; rows come back as real
    :class:`~repro.core.tuples.Tuple` objects (schemas interned per
    connection).
    """

    def __init__(self, conn: "NetworkConnection", cursor_id: int,
                 kind: str, diagnostics: List[Diagnostic],
                 streaming: bool = False):
        self.conn = conn
        self.cursor_id = cursor_id
        self.kind = kind
        self.diagnostics = diagnostics
        self.streaming = streaming
        self.closed = False
        self._prefetched: List[Tuple] = []

    # -- reads -------------------------------------------------------------
    def fetch(self, limit: int = 0) -> List[Tuple]:
        """Drain buffered results: rows already streamed to this client
        plus whatever the service has buffered server-side."""
        out = self._prefetched if not limit else self._prefetched[:limit]
        self._prefetched = self._prefetched[len(out):]
        if limit and len(out) >= limit:
            return out
        out.extend(self.conn._drain_streamed(
            self.cursor_id, (limit - len(out)) if limit else 0))
        if limit and len(out) >= limit:
            return out
        payload = self.conn._request(
            "FETCH", cursor=self.cursor_id,
            limit=(limit - len(out)) if limit else 0)
        fetched = rows_from_wire(payload.get("rows", ()),
                                 self.conn._schemas)
        # STREAM-ROW frames routed to our buffer while the FETCH round
        # trip was in flight were sent before the service answered it,
        # so they precede the fetched rows in production order.  Rows
        # beyond ``limit`` are kept client-side, never discarded.
        arrived = self.conn._drain_streamed(self.cursor_id, 0) + fetched
        if limit:
            room = limit - len(out)
            out.extend(arrived[:room])
            self._prefetched.extend(arrived[room:])
        else:
            out.extend(arrived)
        return out

    def fetchall(self) -> List[Tuple]:
        return self.fetch()

    def __iter__(self):
        while True:
            rows = self.fetch(limit=256)
            if not rows:
                return
            for row in rows:
                yield row

    def fetch_windows(self) -> List[Any]:
        payload = self.conn._request("FETCH", cursor=self.cursor_id,
                                     windows=True)
        return windows_from_wire(payload.get("windows", ()),
                                 self.conn._schemas)

    # -- control -----------------------------------------------------------
    def grant(self, n: int) -> None:
        """Grant ``n`` rows of streaming credit (backpressure release)."""
        self.conn._send_frame({"op": "CREDIT", "cursor": self.cursor_id,
                               "n": int(n)})

    def explain(self, analyze: bool = False) -> Dict[str, Any]:
        return self.conn._request("EXPLAIN", cursor=self.cursor_id,
                                  analyze=analyze)["explain"]

    def cancel(self) -> None:
        self.close()

    def close(self) -> None:
        if self.closed or self.conn.closed:
            self.closed = True
            return
        try:
            self.conn._request("CANCEL", cursor=self.cursor_id)
        except ConnectionClosedError:
            pass
        self.closed = True

    def __enter__(self) -> "NetworkCursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"NetworkCursor(#{self.cursor_id}, {self.kind})"


class NetworkConnection(Connection):
    """A blocking-socket client of the frame protocol.

    One in-flight request at a time (requests are answered in order);
    unsolicited STREAM-ROW frames arriving between responses are routed
    into per-cursor buffers, so streaming delivery and request/response
    interleave safely on one socket.
    """

    def __init__(self, host: str, port: int, client: str = "default",
                 timeout: Optional[float] = 30.0,
                 max_frame: int = MAX_FRAME):
        self.host = host
        self.port = port
        self.client = client
        self.closed = False
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder(max_frame)
        self._max_frame = max_frame
        self._ids = itertools.count(1)
        self._streamed: Dict[int, List[Dict[str, Any]]] = {}
        self._schemas: Dict[Any, Schema] = {}
        self.hello = self._request("HELLO", client=client)
        self.session = self.hello.get("session")

    # -- the wire ----------------------------------------------------------
    def _send_frame(self, frame: Dict[str, Any]) -> None:
        if self.closed:
            raise ConnectionClosedError("connection is closed")
        try:
            self._sock.sendall(encode_frame(frame, self._max_frame))
        except OSError as exc:
            self._teardown()
            raise ConnectionClosedError(f"send failed: {exc}") from None

    def _request(self, op: str, **fields: Any) -> Dict[str, Any]:
        rid = next(self._ids)
        self._send_frame({"op": op, "id": rid, **fields})
        while True:
            for frame in self._read_frames():
                kind = frame.get("type")
                if kind == STREAM_ROW:
                    self._streamed.setdefault(frame["cursor"], []).append(
                        frame["row"])
                    continue
                if kind == ERROR and frame.get("id") is None:
                    self._teardown()
                    raise ConnectionClosedError(
                        str(frame.get("error", {}).get("message",
                                                       "evicted")))
                if frame.get("id") != rid:
                    continue        # a late response we stopped awaiting
                if kind == ERROR:
                    raise error_from_wire(frame.get("error", {}))
                return frame

    def _read_frames(self) -> List[Dict[str, Any]]:
        try:
            data = self._sock.recv(1 << 16)
        except socket.timeout:
            self._teardown()
            raise ConnectionClosedError(
                "timed out awaiting a response") from None
        except OSError as exc:
            self._teardown()
            raise ConnectionClosedError(f"recv failed: {exc}") from None
        if not data:
            self._teardown()
            raise ConnectionClosedError("connection closed by peer")
        return self._decoder.feed(data)

    def _drain_streamed(self, cursor_id: int, limit: int) -> List[Tuple]:
        buf = self._streamed.get(cursor_id, [])
        take = buf if not limit else buf[:limit]
        self._streamed[cursor_id] = buf[len(take):]
        return rows_from_wire(take, self._schemas)

    def _teardown(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    # -- DDL / ingress -----------------------------------------------------
    def create_stream(self, name_or_schema: Union[str, Schema],
                      *columns: str) -> None:
        schema = _as_schema(name_or_schema, columns)
        self._request("DDL", action="create_stream", name=schema.name,
                      columns=schema.column_names())

    def create_table(self, name_or_schema: Union[str, Schema],
                     *columns: str,
                     rows: Sequence[Sequence[Any]] = ()) -> None:
        schema = _as_schema(name_or_schema, columns)
        self._request("DDL", action="create_table", name=schema.name,
                      columns=schema.column_names(),
                      rows=[list(r) for r in rows])

    def insert(self, table: str, *values: Any) -> None:
        self._request("DDL", action="insert", name=table,
                      values=list(values))

    def push(self, stream: str, *values: Any,
             timestamp: Optional[int] = None) -> None:
        self._request("PUSH", stream=stream, rows=[list(values)],
                      timestamp=timestamp)

    def push_tuple(self, stream: str, t: Tuple) -> None:
        self._request("PUSH", stream=stream, rows=[list(t.values)],
                      timestamp=t.timestamp)

    def push_rows(self, stream: str, rows: Sequence[Sequence[Any]],
                  timestamp: Optional[int] = None) -> Dict[str, Any]:
        """Batch ingress; returns ``{"pushed": n, "shed": m}`` (the
        service's load shedder may drop under overload)."""
        return self._request("PUSH", stream=stream,
                             rows=[list(r) for r in rows],
                             timestamp=timestamp)

    def close_stream(self, stream: str) -> None:
        self._request("DDL", action="close_stream", name=stream)

    # -- queries -----------------------------------------------------------
    def submit(self, query: str,
               on_result: Optional[Callable[[Tuple], None]] = None,
               env: Optional[Dict[str, int]] = None,
               allow_unsafe: bool = False, stream: bool = False,
               credit: int = 0) -> NetworkCursor:
        if on_result is not None:
            raise ProtocolError(
                "on_result callbacks are in-process only; use a "
                "streaming cursor (stream=True) and iterate instead")
        payload = self._request("SUBMIT", query=query, env=env,
                                allow_unsafe=allow_unsafe,
                                stream=stream, credit=credit)
        return NetworkCursor(
            self, payload["cursor"], payload["kind"],
            [Diagnostic.from_dict(d)
             for d in payload.get("diagnostics", ())],
            streaming=stream)

    def cancel(self, cursor: NetworkCursor) -> None:
        cursor.close()

    def explain(self, cursor: Union[int, NetworkCursor],
                analyze: bool = False) -> Dict[str, Any]:
        cid = cursor.cursor_id if isinstance(cursor, NetworkCursor) \
            else int(cursor)
        return self._request("EXPLAIN", cursor=cid,
                             analyze=analyze)["explain"]

    def check(self, query: str) -> DiagnosticReport:
        payload = self._request("CHECK", query=query)
        return DiagnosticReport([Diagnostic.from_dict(d)
                                 for d in payload.get("diagnostics", ())])

    # -- driving / observability -------------------------------------------
    def step(self, k: int = 1) -> int:
        return self._request("CONTROL", action="step", k=k)["worked"]

    def run(self) -> int:
        return self._request("CONTROL", action="run")["steps"]

    def stats(self) -> Dict[str, Any]:
        return self._request("STATS")["stats"]

    def net_stats(self) -> Dict[str, Any]:
        return self._request("STATS")["net"]

    def telemetry(self) -> Any:
        from repro.monitor.telemetry import TelemetrySnapshot
        text = self._request("METRICS")["prometheus"]
        return TelemetrySnapshot.from_prometheus(text)

    def close(self) -> None:
        if self.closed:
            return
        try:
            self._request("BYE")
        except ConnectionClosedError:
            pass
        self._teardown()

    def __repr__(self) -> str:
        return (f"NetworkConnection({self.host}:{self.port}, "
                f"session={self.session})")
