"""repro.client — the one client API, local or over the wire.

The paper's Figure 5 puts a *proxy* between applications and the
TelegraphCQ FrontEnd; this package is that proxy made uniform.  Every
application — the CLI, the examples, the benchmarks — obtains an engine
through :func:`connect` and drives it through the same
``Connection``/``Cursor`` surface regardless of where the engine lives:

>>> conn = connect()                        # in-process engine
>>> conn = connect("tcp://127.0.0.1:7673")  # engine behind the service

Both return objects with identical semantics: ``submit`` hands back a
cursor whose only read surface is ``fetch(limit=)`` / ``fetchall()`` /
iteration; errors raise the same :mod:`repro.errors` taxonomy
(:class:`~repro.errors.PlanCheckError` diagnostics — spans included —
survive the network round trip byte-identically).

Constructing :class:`~repro.core.engine.TelegraphCQServer` directly
anywhere else is a lint violation (``TCQ401``): the unified API is the
only door.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.client.connection import (Connection, LocalConnection,
                                     NetworkConnection, NetworkCursor)
from repro.errors import ProtocolError

__all__ = ["connect", "Connection", "LocalConnection",
           "NetworkConnection", "NetworkCursor"]


def connect(address: Optional[str] = None, *, client: str = "default",
            **kwargs) -> Connection:
    """Open a connection to a TelegraphCQ engine.

    ``address`` of ``None`` or ``"local"`` starts an in-process engine
    (a :class:`LocalConnection`); ``"tcp://host:port"`` or
    ``"host:port"`` dials a running
    :class:`~repro.net.service.TelegraphCQService`
    (a :class:`NetworkConnection`).  Extra keyword arguments go to the
    chosen connection class.
    """
    if address is None or address == "local":
        return LocalConnection(client=client, **kwargs)
    spec = address[len("tcp://"):] if address.startswith("tcp://") \
        else address
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ProtocolError(
            f"cannot parse address {address!r}; expected "
            "'tcp://host:port', 'host:port', or 'local'")
    return NetworkConnection(host or "127.0.0.1", int(port),
                             client=client, **kwargs)
