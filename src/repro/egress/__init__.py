"""Egress modules: managed result delivery (Section 4.3)."""
