"""Egress modules — managed result delivery (Section 4.3, "Egress
Modules").

"Analogous to our ingress modules, we also plan to investigate
mechanisms for managing and delivering results, which will be
encapsulated in egress operators."  The paper sketches four
responsibilities, each implemented here:

* **push-based** delivery — clients are continually streamed results
  (:class:`PushEgress`);
* **pull-based** delivery — results are logged and retrieved
  intermittently (:class:`PullEgress`);
* **fault tolerance for mobile clients** that "periodically become
  disconnected" — :class:`PullEgress` buffers per client with bounded
  retention and replays from each client's last acknowledged sequence
  number;
* **transcoding** for clients with different capabilities, and
  **aggregation/buffering** "to efficiently support result delivery to
  large numbers of clients" — :class:`TranscodingEgress` and
  :class:`FanoutEgress` (one upstream result stream shared by any
  number of subscribers, with per-subscriber format functions and
  batch delivery).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple as TypingTuple

from repro.core.tuples import Tuple
from repro.errors import ExecutionError
from repro.fjords.module import Module
from repro.monitor import telemetry
import repro.monitor.tracing as tracing


class _EgressTotals:
    """Process-wide monotonic delivery counters across every egress
    module (modules are per-plan and short-lived; totals are not)."""

    __slots__ = ("delivered", "dropped", "rejected", "batches", "logged")

    def __init__(self) -> None:
        self.delivered = 0
        self.dropped = 0
        self.rejected = 0
        self.batches = 0
        self.logged = 0


TOTALS = _EgressTotals()


def _collect_egress_telemetry(reg: "telemetry.MetricRegistry") -> None:
    reg.counter("tcq_egress_delivered_total",
                "Results delivered to clients").set_total(TOTALS.delivered)
    reg.counter("tcq_egress_dropped_total",
                "Results dropped for slow or failing clients").set_total(
        TOTALS.dropped)
    reg.counter("tcq_egress_rejected_total",
                "Results rejected by transcoders").set_total(TOTALS.rejected)
    reg.counter("tcq_egress_batches_total",
                "Batches shipped by fan-out egress").set_total(TOTALS.batches)
    reg.counter("tcq_egress_logged_total",
                "Results logged for pull-based retrieval").set_total(
        TOTALS.logged)


telemetry.register_global_collector(_collect_egress_telemetry)


class PushEgress(Module):
    """Continually streams results to registered client callbacks.

    A slow client (its callback raises or its ``ready`` gate returns
    False) does not block the dataflow: its results buffer up to
    ``per_client_buffer`` and then the oldest are dropped, counted per
    client — streaming delivery must never exert unbounded backpressure
    on the engine.
    """

    def __init__(self, name: str = "", per_client_buffer: int = 1024):
        super().__init__(name=name or "push-egress", arity_out=0)
        self.per_client_buffer = per_client_buffer
        self._clients: Dict[str, Dict[str, Any]] = {}

    def subscribe(self, client: str,
                  callback: Callable[[Tuple], None],
                  ready: Optional[Callable[[], bool]] = None) -> None:
        if client in self._clients:
            raise ExecutionError(f"client {client!r} already subscribed")
        self._clients[client] = {
            "callback": callback,
            "ready": ready or (lambda: True),
            "buffer": deque(),
            "delivered": 0,
            "dropped": 0,
        }

    def unsubscribe(self, client: str) -> None:
        self._clients.pop(client, None)

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        for state in self._clients.values():
            buffer: Deque[Tuple] = state["buffer"]
            buffer.append(item)
            if len(buffer) > self.per_client_buffer:
                buffer.popleft()
                state["dropped"] += 1
                TOTALS.dropped += 1
            self._drain(state)
        return ()

    def _drain(self, state: Dict[str, Any]) -> None:
        buffer: Deque[Tuple] = state["buffer"]
        while buffer and state["ready"]():
            t = buffer.popleft()
            try:
                state["callback"](t)
            except Exception:
                # A failing client loses this tuple, not the dataflow.
                state["dropped"] += 1
                TOTALS.dropped += 1
                continue
            state["delivered"] += 1
            TOTALS.delivered += 1
            if tracing.TRACER.active:
                tracing.note_hop(t, "egress", self.name)
                tracing.finish_item(t, self.name)

    def flush(self) -> None:
        """Retry delivery to clients that were previously not ready."""
        for state in self._clients.values():
            self._drain(state)

    def client_stats(self, client: str) -> Dict[str, int]:
        state = self._clients.get(client)
        if state is None:
            raise ExecutionError(f"unknown client {client!r}")
        return {"delivered": state["delivered"],
                "dropped": state["dropped"],
                "buffered": len(state["buffer"])}

    def _finish(self) -> None:
        self.flush()
        self.finished = True


class PullEgress(Module):
    """Logs results for intermittent retrieval — the mobile-client
    story.

    Every result gets a sequence number.  A client fetches "everything
    since my last acknowledged sequence number"; after a disconnection
    (even one where the response was lost) the same fetch repeats
    exactly, so delivery to each client is effectively at-least-once
    with client-side dedup by sequence number, or exactly-once if the
    client acknowledges.  ``retention`` bounds the log; clients that
    stay away too long are told how much they missed.
    """

    def __init__(self, name: str = "", retention: int = 10_000):
        super().__init__(name=name or "pull-egress", arity_out=0)
        self.retention = retention
        self._log: Deque[TypingTuple[int, Tuple]] = deque()
        self._seq = itertools.count(1)
        self._acked: Dict[str, int] = {}
        self.truncated_to = 0          # lowest seq still retained - 1

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        self._log.append((next(self._seq), item))
        TOTALS.logged += 1
        if tracing.TRACER.active:
            tracing.note_hop(item, "egress", self.name, "logged")
            tracing.finish_item(item, self.name)
        while len(self._log) > self.retention:
            seq, _t = self._log.popleft()
            self.truncated_to = seq
        return ()

    def register_client(self, client: str) -> None:
        self._acked.setdefault(client, self.truncated_to)

    def fetch(self, client: str,
              limit: int = 0) -> TypingTuple[List[TypingTuple[int, Tuple]], int]:
        """Results after the client's last ack.

        Returns ``(batch, missed)`` where ``missed`` counts results that
        aged out of retention while the client was disconnected.
        """
        if client not in self._acked:
            raise ExecutionError(
                f"client {client!r} not registered with {self.name}")
        since = self._acked[client]
        missed = max(0, self.truncated_to - since)
        out = [(seq, t) for seq, t in self._log if seq > since]
        if limit:
            out = out[:limit]
        return out, missed

    def acknowledge(self, client: str, seq: int) -> None:
        if client not in self._acked:
            raise ExecutionError(f"client {client!r} not registered")
        self._acked[client] = max(self._acked[client], seq)

    def _finish(self) -> None:
        self.finished = True


class TranscodingEgress(Module):
    """Re-encodes results per downstream capability.

    ``transcode`` maps a result tuple to whatever the client's device
    can handle (a projected tuple, a string, a dict...).  Items the
    transcoder rejects (returns None) are counted, not delivered —
    e.g. a numeric-only pager dropping text columns.
    """

    def __init__(self, transcode: Callable[[Tuple], Optional[Any]],
                 sink: Callable[[Any], None], name: str = ""):
        super().__init__(name=name or "transcode-egress",
                         arity_out=0)
        self.transcode = transcode
        self.sink = sink
        self.delivered = 0
        self.rejected = 0

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        encoded = self.transcode(item)
        if encoded is None:
            self.rejected += 1
            TOTALS.rejected += 1
            return ()
        self.sink(encoded)
        self.delivered += 1
        TOTALS.delivered += 1
        if tracing.TRACER.active:
            tracing.note_hop(item, "egress", self.name)
            tracing.finish_item(item, self.name)
        return ()

    def _finish(self) -> None:
        self.finished = True


class FanoutEgress(Module):
    """Aggregation and buffering for large client populations.

    One upstream result stream; N subscribers each receive *batches*
    (delivered when ``batch_size`` accumulates or on an explicit/EOS
    flush) — the paper's "operators that provide aggregation and
    buffering services" for overlay delivery networks.  Work is shared:
    the upstream tuple is handled once no matter how many subscribers
    exist; only the per-subscriber batch append is per-client.
    """

    def __init__(self, name: str = "", batch_size: int = 32):
        super().__init__(name=name or "fanout-egress", arity_out=0)
        self.batch_size = batch_size
        self._subscribers: Dict[str, Dict[str, Any]] = {}
        self.tuples_seen = 0

    def subscribe(self, client: str,
                  deliver_batch: Callable[[List[Any]], None],
                  fmt: Optional[Callable[[Tuple], Any]] = None) -> None:
        if client in self._subscribers:
            raise ExecutionError(f"client {client!r} already subscribed")
        self._subscribers[client] = {
            "deliver": deliver_batch,
            "fmt": fmt or (lambda t: t),
            "pending": [],
            "batches": 0,
        }

    def unsubscribe(self, client: str) -> None:
        self._subscribers.pop(client, None)

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        self.tuples_seen += 1
        if tracing.TRACER.active:
            # The upstream tuple is handled once; subscribers receive
            # formatted copies, so the trace closes here.
            tracing.note_hop(item, "egress", self.name, "fanout")
            tracing.finish_item(item, self.name)
        for state in self._subscribers.values():
            state["pending"].append(state["fmt"](item))
            if len(state["pending"]) >= self.batch_size:
                self._ship(state)
        return ()

    def _ship(self, state: Dict[str, Any]) -> None:
        if not state["pending"]:
            return
        batch, state["pending"] = state["pending"], []
        state["deliver"](batch)
        state["batches"] += 1
        TOTALS.batches += 1
        TOTALS.delivered += len(batch)

    def flush(self) -> None:
        for state in self._subscribers.values():
            self._ship(state)

    def batches_shipped(self, client: str) -> int:
        state = self._subscribers.get(client)
        if state is None:
            raise ExecutionError(f"unknown client {client!r}")
        return state["batches"]

    def _finish(self) -> None:
        self.flush()
        self.finished = True
