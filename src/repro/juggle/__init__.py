"""juggle subpackage of the TelegraphCQ reproduction."""
