"""Juggle: online reordering for prioritising records by content
([RRH99], cited in Sections 2.1 and 4.3).

Juggle sits in a dataflow and reorders the tuples passing through so
that records the *user currently cares about* are delivered first —
the mechanism the paper plans to reuse for pushing "user preferences
down into the query execution process" under QoS pressure.

The operator maintains a bounded buffer organised as priority buckets.
Each scheduling quantum it admits arriving tuples and emits the
highest-preference buffered tuples.  Preferences can be changed while
the dataflow runs (interactive control), which instantly redirects
delivery order — no restart, matching the online spirit of the paper.

Quality metric: for a prefix of delivered output, the fraction of
delivered tuples belonging to the user's preferred classes; FIFO
delivery is the baseline (experiment E13).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple as TypingTuple

from repro.core.tuples import Punctuation, Tuple
from repro.errors import PlanError
from repro.fjords.module import Module, StepResult
from repro.fjords.queues import EMPTY


class Juggle(Module):
    """Online reordering module.

    ``classify`` maps a tuple to a class key (e.g. a region name); the
    mutable ``preferences`` dict maps class keys to numeric priorities
    (higher = deliver sooner; missing classes get priority 0).

    ``buffer_capacity`` bounds memory: when full, Juggle emits before
    admitting more.  ``emit_quota`` controls how many tuples leave per
    quantum, modelling a consumer slower than the producer — the regime
    where reordering pays off (with an infinitely fast consumer, order
    barely matters).
    """

    def __init__(self, classify: Callable[[Tuple], Any],
                 preferences: Optional[Dict[Any, float]] = None,
                 buffer_capacity: int = 1024, emit_quota: int = 8,
                 name: str = ""):
        super().__init__(name=name or "juggle")
        if buffer_capacity < 1:
            raise PlanError("juggle buffer capacity must be >= 1")
        self.classify = classify
        self.preferences: Dict[Any, float] = dict(preferences or {})
        self.buffer_capacity = buffer_capacity
        self.emit_quota = emit_quota
        self._counter = itertools.count()
        #: heap of (-priority, admission order, tuple)
        self._heap: List[TypingTuple[float, int, Tuple]] = []
        self._draining = False
        self.reorders = 0

    def set_preference(self, class_key: Any, priority: float) -> None:
        """Change a preference while running.  Already-buffered tuples
        of the class are re-keyed (the "online" in online reordering)."""
        self.preferences[class_key] = priority
        rebuilt = []
        for _old_priority, order, t in self._heap:
            rebuilt.append((-self._priority(t), order, t))
        heapq.heapify(rebuilt)
        self._heap = rebuilt
        self.reorders += 1

    def _priority(self, t: Tuple) -> float:
        return self.preferences.get(self.classify(t), 0.0)

    def ready(self) -> bool:
        """Unlike a plain module, Juggle has work whenever its buffer
        holds tuples — it can emit without consuming."""
        return bool(self._heap) or super().ready()

    def run_once(self, batch: Optional[int] = None) -> StepResult:
        if self.finished:
            return StepResult.DONE
        worked = False
        # Admit arrivals up to capacity.
        admit_budget = self.buffer_capacity - len(self._heap)
        queue = self.inputs[0]
        while admit_budget > 0:
            item = queue.pop()
            if item is EMPTY:
                break
            if isinstance(item, Punctuation):
                if item.kind == Punctuation.END_OF_STREAM:
                    self._draining = True
                else:
                    self.emit(item)
                worked = True
                continue
            self.tuples_in += 1
            heapq.heappush(self._heap,
                           (-self._priority(item), next(self._counter),
                            item))
            admit_budget -= 1
            worked = True
        # Emit the best buffered tuples.
        quota = self.emit_quota if not self._draining else len(self._heap)
        for _ in range(quota):
            if not self._heap:
                break
            _neg, _order, t = heapq.heappop(self._heap)
            self.emit(t)
            worked = True
        if self._draining and not self._heap:
            self.finished = True
            self.emit(Punctuation.eos(self.name))
            return StepResult.DONE
        return StepResult.BUSY if worked else StepResult.IDLE


def prefix_quality(delivered: Iterable[Tuple], prefix: int,
                   is_interesting: Callable[[Tuple], bool]) -> float:
    """Fraction of the first ``prefix`` delivered tuples that are
    interesting — the metric E13 reports for Juggle vs FIFO."""
    count = 0
    interesting = 0
    for t in delivered:
        if count >= prefix:
            break
        count += 1
        if is_interesting(t):
            interesting += 1
    return interesting / count if count else 0.0
