"""The multiprocess data plane: Flux on real worker processes.

This is the cluster-based TelegraphCQ substrate the paper promises in
Section 6 ("We are currently extending the Flux module to serve as the
basis of the cluster-based implementation"): each *machine* of the
:class:`~repro.flux.backend.ClusterBackend` protocol becomes a real
spawned interpreter running a partition shard, so balance and recovery
are wall-clock quantities and partitioned CPU-bound work actually uses
more than one core.

Architecture (the conductor/worker idiom)
-----------------------------------------

One **conductor** (this process) owns routing, the in-flight ledger and
all placement decisions; N **workers** own partition state and apply
tuples.  Every worker is connected by two duplex pipes:

* a **control channel** carrying ``execute_command`` requests
  (``configure`` / ``create`` / ``install`` / ``remove`` /
  ``snapshot`` / ``ping`` / ``shutdown``) answered by
  ``execution_succeeded`` / ``execution_failed`` replies, and
* a **data channel** carrying batched tuple rows down and
  acknowledgement batches + heartbeats up.

Both channels speak the :mod:`repro.net.frames` length-prefixed JSON
codec — the same frames the network front door uses — so framing bugs
cannot drift between the wire and the cluster.  Tuples cross as
``tuple_to_wire`` payloads; partition snapshots and state factories are
arbitrary Python objects and cross as base64-pickle fields inside a
JSON frame.

Snapshot barrier: control and data pipes have no cross-channel ordering
guarantee, so ``snapshot``/``remove`` commands carry a *mark*.  The
conductor flushes its data outbox, drops a ``mark`` frame into the data
channel, then issues the command; the worker consumes data up to that
mark (acking as it goes) before acting.  Anything routed before the
barrier is therefore inside the snapshot, and the acks the worker sent
while draining are readable by the time the reply arrives — which is
what lets Flux forward *exactly* the not-yet-applied tuples to a fresh
replica without double-applying any.

Worker lifecycle: backends are context managers; ``close()`` attempts a
graceful ``shutdown`` command, escalates to SIGTERM then SIGKILL, and an
``atexit`` hook sweeps anything a crashed test left behind, so no orphan
worker survives the conductor.  :func:`live_worker_pids` is the leak
check tests assert against.

:class:`LoopbackBackend` runs the *same* :class:`WorkerCore` and codec
in-process with deterministic scheduling — the tier-1 twin used by the
hypothesis parity property (simulated vs worker-core execution), with
zero processes spawned.

This module is the only place in ``repro`` allowed to touch
multiprocessing primitives (lint rule TCQ601).
"""

from __future__ import annotations

import atexit
import base64
import itertools
import multiprocessing  # tcq: allow[TCQ601] this IS the confinement module: worker lifecycle lives here
import multiprocessing.connection  # tcq: allow[TCQ601] this IS the confinement module: worker lifecycle lives here
import os
import pickle
import signal
import sys
from typing import Any, Callable, Dict, List, Optional, Set, \
    Tuple as TypingTuple

from repro.core.tuples import Schema, Tuple
from repro.errors import ClusterError
from repro.flux.backend import AckMap, ClusterBackend, PartitionHandoff
from repro.flux.cluster import PartitionState
from repro.analysis import sanitize
from repro.monitor.clock import now
from repro.monitor.telemetry import get_registry
from repro.net.frames import FrameDecoder, encode_frame, tuple_from_wire, \
    tuple_to_wire

#: Control frames may carry whole partition snapshots.
CTRL_MAX_FRAME = 64 << 20
#: Data frames are kept small and chunked.
DATA_MAX_FRAME = 4 << 20

_BACKEND_IDS = itertools.count()


def _to_b64(obj: Any) -> str:
    # Under REPRO_SANITIZE=1 every payload headed across the process
    # boundary is round-tripped first — the runtime check backing the
    # static TCQ702 claim.
    if sanitize.enabled():
        sanitize.assert_picklable(obj, "cross-process payload")
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _from_b64(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def _spin(iterations: int) -> int:
    """Deterministic CPU burn, the knob that makes a worker 'slow' (for
    heterogeneity experiments) or a workload CPU-bound (for speedup
    measurements)."""
    acc = 0
    for i in range(iterations):
        acc += i * i
    return acc


class WorkerCore:
    """Transport-agnostic worker logic: frames in, frames out.

    Owns the partition states of one machine.  The process entrypoint
    (:func:`_worker_main`) wraps this in pipes and signals; the
    :class:`LoopbackBackend` drives it synchronously in-process.  Both
    paths run the same code, so the tier-1 parity property genuinely
    exercises the multiprocess execution semantics.
    """

    def __init__(self, worker_id: str, spin: int = 0):
        self.worker_id = worker_id
        self.spin = spin
        self.partitions: Dict[int, PartitionState] = {}
        self._factory: Optional[Callable[[], PartitionState]] = None
        self._state_cls: Optional[type] = None
        self._schemas: Dict[Any, Schema] = {}
        self.processed = 0

    # -- state management ---------------------------------------------------
    def _make_state(self) -> PartitionState:
        if self._factory is None:
            raise ClusterError(
                f"worker {self.worker_id} has no state factory; "
                f"configure first")
        return self._factory()

    def _resolve_state_cls(self) -> type:
        if self._state_cls is None:
            self._state_cls = type(self._make_state())
        return self._state_cls

    # -- control channel ----------------------------------------------------
    def on_control(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one command frame; returns the reply frame."""
        req_id = frame.get("id")
        cmd = frame.get("cmd")
        try:
            payload = self._execute(cmd, frame)
        except Exception as exc:   # noqa: BLE001 - crosses a process edge
            return {"type": "execution_failed", "id": req_id,
                    "cmd": cmd, "error": f"{type(exc).__name__}: {exc}"}
        reply = {"type": "execution_succeeded", "id": req_id, "cmd": cmd}
        reply.update(payload)
        return reply

    def _execute(self, cmd: Optional[str],
                 frame: Dict[str, Any]) -> Dict[str, Any]:
        if cmd == "configure":
            self._factory = _from_b64(frame["factory"])
            self._state_cls = None
            self.spin = int(frame.get("spin", self.spin))
            return {}
        if cmd == "create":
            self.partitions[int(frame["pid"])] = self._make_state()
            return {}
        if cmd == "install":
            state = self._resolve_state_cls().from_snapshot(
                _from_b64(frame["snapshot"]))
            self.partitions[int(frame["pid"])] = state
            return {}
        if cmd == "remove":
            state = self.partitions.pop(int(frame["pid"]), None)
            if state is None:
                return {"present": False}
            return {"present": True, "snapshot": _to_b64(state.snapshot()),
                    "size": state.size(),
                    "applied": getattr(state, "applied", 0)}
        if cmd == "snapshot":
            state = self.partitions.get(int(frame["pid"]))
            if state is None:
                return {"present": False}
            return {"present": True, "snapshot": _to_b64(state.snapshot()),
                    "size": state.size(),
                    "applied": getattr(state, "applied", 0)}
        if cmd == "ping":
            return {"processed": self.processed,
                    "partitions": sorted(self.partitions)}
        if cmd == "shutdown":
            return {}
        raise ClusterError(f"unknown worker command {cmd!r}")

    # -- data channel -------------------------------------------------------
    def on_data(self, frame: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Apply one data frame; returns reply frames (acks)."""
        if frame.get("op") != "data":
            return []   # marks are handled by the transport loop
        acks: List[TypingTuple[int, int]] = []
        spin = self.spin
        for pid, seq, wire in frame["rows"]:
            state = self.partitions.get(pid)
            if spin:
                _spin(spin)
            if state is not None:
                state.apply(tuple_from_wire(wire, self._schemas))
            acks.append((pid, seq))
        self.processed += len(acks)
        if not acks:
            return []
        return [{"op": "acks", "worker": self.worker_id,
                 "acks": [[p, s] for p, s in acks],
                 "processed": self.processed}]


def _worker_main(worker_id: str, ctrl: Any, data: Any, spin: int) -> None:
    """Process entrypoint: pump both channels into a WorkerCore.

    Exits on a ``shutdown`` command, on SIGTERM, or when the conductor's
    end of the control pipe disappears (so a dying conductor can never
    strand a worker).
    """
    signal.signal(signal.SIGTERM, lambda *_a: sys.exit(0))
    if os.environ.get("TCQ_PROCS_DEBUG"):   # pragma: no cover - debug aid
        import faulthandler
        faulthandler.dump_traceback_later(10, exit=True)
    core = WorkerCore(worker_id, spin)
    ctrl_decoder = FrameDecoder(max_frame=CTRL_MAX_FRAME)
    data_decoder = FrameDecoder(max_frame=DATA_MAX_FRAME)
    last_beat = now()
    # Highest barrier mark consumed from the data channel.  The main
    # loop may legitimately read a mark frame *before* the control
    # command referencing it arrives (the two pipes are unordered
    # relative to each other), so the barrier must check this watermark
    # rather than insist on reading the mark itself.
    marks_seen = 0

    def send_ctrl(frame: Dict[str, Any]) -> None:
        ctrl.send_bytes(encode_frame(frame, max_frame=CTRL_MAX_FRAME))

    def send_data(frame: Dict[str, Any]) -> None:
        data.send_bytes(encode_frame(frame, max_frame=DATA_MAX_FRAME))

    def handle_data_frame(frame: Dict[str, Any]) -> None:
        nonlocal marks_seen
        if frame.get("op") == "mark":
            marks_seen = max(marks_seen, int(frame["mark"]))
            return
        for reply in core.on_data(frame):
            send_data(reply)

    def drain_data_until(mark: int) -> None:
        """Barrier: consume the data channel (blocking) up to ``mark``,
        acking everything applied along the way."""
        while marks_seen < mark:
            for frame in data_decoder.feed(data.recv_bytes()):
                handle_data_frame(frame)

    while True:
        try:
            ready = multiprocessing.connection.wait([ctrl, data],
                                                    timeout=0.25)
        except OSError:
            return
        if not ready:
            if now() - last_beat > 1.0:
                last_beat = now()
                try:
                    send_data({"op": "heartbeat", "worker": worker_id,
                               "processed": core.processed})
                except (OSError, BrokenPipeError):
                    return
            continue
        for conn in ready:
            try:
                # A barrier drain triggered by the ctrl channel may have
                # consumed the very bytes that made the data channel
                # ready; re-check before the blocking read.
                if not conn.poll(0):
                    continue
                blob = conn.recv_bytes()
            except (EOFError, OSError):
                return
            if conn is data:
                for frame in data_decoder.feed(blob):
                    handle_data_frame(frame)
                continue
            for frame in ctrl_decoder.feed(blob):
                mark = frame.get("mark")
                if mark is not None:
                    drain_data_until(int(mark))
                reply = core.on_control(frame)
                send_ctrl(reply)
                if frame.get("cmd") == "shutdown":
                    return


class _WorkerHandle:
    """Conductor-side view of one spawned worker."""

    __slots__ = ("worker_id", "process", "ctrl", "data", "alive",
                 "outbox", "decoder", "last_heartbeat")

    def __init__(self, worker_id: str, process: Any, ctrl: Any, data: Any):
        self.worker_id = worker_id
        self.process = process
        self.ctrl = ctrl
        self.data = data
        self.alive = True
        #: rows awaiting flush: (pid, seq, wire-tuple).
        self.outbox: List[TypingTuple[int, int, Dict[str, Any]]] = []
        self.decoder = FrameDecoder(max_frame=DATA_MAX_FRAME)
        self.last_heartbeat: Dict[str, Any] = {}


#: Backends with live workers, for the atexit sweep and the leak check.
_LIVE_BACKENDS: Set["MultiprocessBackend"] = set()
_ATEXIT_ARMED = False


def _sweep_backends() -> None:
    for backend in list(_LIVE_BACKENDS):
        try:
            backend.close()
        except Exception:   # noqa: BLE001 - teardown must not raise at exit
            pass


def live_worker_pids() -> Set[int]:
    """PIDs of worker processes still running — the orphan leak check.
    Empty after every backend is closed."""
    pids: Set[int] = set()
    for backend in _LIVE_BACKENDS:
        for handle in backend._workers.values():
            proc = handle.process
            if proc.pid is not None and proc.is_alive():
                pids.add(proc.pid)
    return pids


class MultiprocessBackend(ClusterBackend):
    """Real worker processes behind the ClusterBackend protocol.

    ``workers`` is a count (ids ``w0..wN-1``) or an explicit id list;
    ``spins`` optionally maps worker id -> per-tuple CPU-burn
    iterations, the heterogeneity/CPU-load knob.  Workers are spawned
    (never forked) so each shard is a fresh interpreter — which is also
    why :meth:`Flux._stable_hash` must be seed-independent.

    Backlog is the conductor's view: routed-but-unacknowledged rows per
    worker.  ``step()`` flushes outboxes and collects acks, blocking
    briefly when work is outstanding so drive loops do not spin.
    """

    def __init__(self, workers: Any = 2,
                 spins: Optional[Dict[str, int]] = None,
                 batch_rows: int = 256,
                 step_wait_s: float = 0.01,
                 rpc_timeout_s: float = 30.0):
        if isinstance(workers, int):
            worker_ids = [f"w{i}" for i in range(workers)]
        else:
            worker_ids = list(workers)
        if not worker_ids:
            raise ClusterError("need at least one worker")
        if len(set(worker_ids)) != len(worker_ids):
            raise ClusterError("duplicate worker ids")
        self.batch_rows = batch_rows
        self.step_wait_s = step_wait_s
        self.rpc_timeout_s = rpc_timeout_s
        self._spins = dict(spins or {})
        self._workers: Dict[str, _WorkerHandle] = {}
        self._outstanding: Dict[str, int] = {}
        self._applied: Dict[str, Dict[int, int]] = {}
        self._processed: Dict[str, int] = {}
        self._ack_buffer: Dict[str, List[TypingTuple[int, int]]] = {}
        self._rpc_ids = itertools.count()
        self._marks = itertools.count(1)
        self._closed = False
        self._started_at = now()
        self._telemetry_id = f"procs#{next(_BACKEND_IDS)}"
        ctx = multiprocessing.get_context("spawn")
        for wid in worker_ids:
            ctrl_a, ctrl_b = ctx.Pipe(duplex=True)
            data_a, data_b = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main, name=f"flux-{wid}",
                args=(wid, ctrl_b, data_b, self._spins.get(wid, 0)),
                daemon=True)
            proc.start()
            ctrl_b.close()
            data_b.close()
            self._workers[wid] = _WorkerHandle(wid, proc, ctrl_a, data_a)
            self._outstanding[wid] = 0
            self._applied[wid] = {}
            self._processed[wid] = 0
            self._ack_buffer[wid] = []
        global _ATEXIT_ARMED
        _LIVE_BACKENDS.add(self)
        if not _ATEXIT_ARMED:
            atexit.register(_sweep_backends)
            _ATEXIT_ARMED = True
        get_registry().register_collector(self._publish_telemetry)

    # -- conductor plumbing -------------------------------------------------
    def _handle(self, machine_id: str) -> _WorkerHandle:
        handle = self._workers.get(machine_id)
        if handle is None:
            raise ClusterError(f"unknown machine {machine_id!r}")
        return handle

    def _live(self, machine_id: str) -> _WorkerHandle:
        handle = self._handle(machine_id)
        if not handle.alive:
            raise ClusterError(f"machine {machine_id!r} is dead")
        return handle

    def _absorb(self, handle: _WorkerHandle, frame: Dict[str, Any]) -> None:
        op = frame.get("op")
        if op == "acks":
            acks = [(int(p), int(s)) for p, s in frame["acks"]]
            self._ack_buffer[handle.worker_id].extend(acks)
            self._outstanding[handle.worker_id] = max(
                0, self._outstanding[handle.worker_id] - len(acks))
            per_machine = self._applied[handle.worker_id]
            for pid, _seq in acks:
                per_machine[pid] = per_machine.get(pid, 0) + 1
            self._processed[handle.worker_id] += len(acks)
            handle.last_heartbeat = {"processed": frame.get("processed"),
                                     "at": now()}
        elif op == "heartbeat":
            handle.last_heartbeat = {"processed": frame.get("processed"),
                                     "at": now()}

    def _drain(self, handle: _WorkerHandle) -> None:
        """Absorb everything currently readable on the data channel."""
        if not handle.alive:
            return
        try:
            while handle.data.poll(0):
                for frame in handle.decoder.feed(handle.data.recv_bytes()):  # tcq: allow[TCQ701] poll(0) just reported readable bytes, so this recv returns immediately
                    self._absorb(handle, frame)
        except (EOFError, OSError, BrokenPipeError):
            pass   # worker died; Flux learns via fail()/on_machine_failure

    def _flush(self, handle: _WorkerHandle) -> None:
        """Push the outbox down the data pipe in bounded chunks,
        draining acks between chunks so neither side can deadlock on a
        full pipe."""
        if not handle.alive or not handle.outbox:
            return
        outbox, handle.outbox = handle.outbox, []
        try:
            for i in range(0, len(outbox), self.batch_rows):
                chunk = outbox[i:i + self.batch_rows]
                handle.data.send_bytes(encode_frame(
                    {"op": "data",
                     "rows": [[pid, seq, wire] for pid, seq, wire in chunk]},
                    max_frame=DATA_MAX_FRAME))
                self._drain(handle)
        except (OSError, BrokenPipeError):
            pass

    def _rpc(self, machine_id: str, cmd: str, barrier: bool = False,
             **fields: Any) -> Dict[str, Any]:
        handle = self._live(machine_id)
        req_id = next(self._rpc_ids)
        frame: Dict[str, Any] = {"op": "execute_command", "id": req_id,
                                 "cmd": cmd}
        frame.update(fields)
        if barrier:
            self._flush(handle)
            mark = next(self._marks)
            try:
                handle.data.send_bytes(encode_frame(
                    {"op": "mark", "mark": mark},
                    max_frame=DATA_MAX_FRAME))
            except (OSError, BrokenPipeError):
                raise ClusterError(
                    f"machine {machine_id!r} died mid-barrier") from None
            frame["mark"] = mark
        try:
            handle.ctrl.send_bytes(encode_frame(frame,
                                                max_frame=CTRL_MAX_FRAME))
        except (OSError, BrokenPipeError):
            raise ClusterError(
                f"machine {machine_id!r} is unreachable") from None
        decoder = FrameDecoder(max_frame=CTRL_MAX_FRAME)
        deadline = now() + self.rpc_timeout_s
        while True:
            # Keep absorbing acks while waiting so a barrier drain's
            # acknowledgements are in the ledger's reach immediately.
            self._drain(handle)
            if handle.ctrl.poll(0.005):  # tcq: allow[TCQ701] control-plane RPC: partition moves are rare and must synchronously await the barrier reply; making this async is the worker-restart roadmap item
                try:
                    frames = decoder.feed(handle.ctrl.recv_bytes())  # tcq: allow[TCQ701] poll above just reported the reply bytes readable
                except (EOFError, OSError):
                    raise ClusterError(
                        f"machine {machine_id!r} died during "
                        f"{cmd!r}") from None
                for reply in frames:
                    if reply.get("id") != req_id:
                        continue
                    if reply.get("type") == "execution_succeeded":
                        self._drain(handle)
                        return reply
                    raise ClusterError(
                        f"{cmd!r} failed on {machine_id!r}: "
                        f"{reply.get('error')}")
            if now() > deadline:
                raise ClusterError(
                    f"{cmd!r} timed out on machine {machine_id!r}")

    # -- ClusterBackend: configuration -------------------------------------
    def configure(self, state_factory: Callable[[], PartitionState]) -> None:
        try:
            blob = _to_b64(state_factory)
        except Exception as exc:   # noqa: BLE001 - explain the constraint
            raise ClusterError(
                f"state factory {state_factory!r} must pickle to cross "
                f"the process boundary (use a module-level callable or "
                f"functools.partial): {exc}") from None
        for wid in self._workers:
            if self._workers[wid].alive:
                self._rpc(wid, "configure", factory=blob,
                          spin=self._spins.get(wid, 0))

    # -- ClusterBackend: membership -----------------------------------------
    def machine_ids(self) -> List[str]:
        return list(self._workers)

    def alive_ids(self) -> List[str]:
        return [wid for wid, h in self._workers.items() if h.alive]

    def is_alive(self, machine_id: str) -> bool:
        return self._handle(machine_id).alive

    # -- ClusterBackend: partition state ------------------------------------
    def create_partition(self, machine_id: str, pid: int) -> None:
        self._rpc(machine_id, "create", pid=pid)
        self._applied[machine_id][pid] = 0

    def install_partition(self, machine_id: str, pid: int,
                          handoff: PartitionHandoff) -> None:
        snapshot = handoff.snapshot
        if snapshot is None and handoff.state is not None:
            snapshot = handoff.state.snapshot()
        self._rpc(machine_id, "install", pid=pid, snapshot=_to_b64(snapshot))
        self._applied[machine_id][pid] = handoff.applied

    def remove_partition(self, machine_id: str,
                         pid: int) -> Optional[PartitionHandoff]:
        reply = self._rpc(machine_id, "remove", pid=pid, barrier=True)
        if not reply.get("present"):
            return None
        return PartitionHandoff(_from_b64(reply["snapshot"]),
                                int(reply["size"]), int(reply["applied"]))

    def snapshot_partition(self, machine_id: str,
                           pid: int) -> Optional[PartitionHandoff]:
        if not self._handle(machine_id).alive:
            return None
        reply = self._rpc(machine_id, "snapshot", pid=pid, barrier=True)
        if not reply.get("present"):
            return None
        return PartitionHandoff(_from_b64(reply["snapshot"]),
                                int(reply["size"]), int(reply["applied"]))

    # -- ClusterBackend: data plane ------------------------------------------
    def enqueue(self, machine_id: str, pid: int, seq: int,
                t: Tuple) -> None:
        handle = self._handle(machine_id)
        if not handle.alive:
            raise ClusterError(f"enqueue on dead machine {machine_id}")
        handle.outbox.append((pid, seq, tuple_to_wire(t)))
        self._outstanding[machine_id] += 1

    def step(self) -> AckMap:
        """Flush outboxes and absorb whatever is already readable.

        Never blocks: when the conductor is hosted beside the network
        pump (FluxPump under the service scheduler), a step runs on the
        event-loop thread and must return immediately.  Standalone
        drive loops that *want* to park between acks call
        :meth:`wait_for_acks` explicitly.
        """
        for handle in self._workers.values():
            self._flush(handle)
            self._drain(handle)
        return self.poll_acks()

    def wait_for_acks(self, timeout: Optional[float] = None) -> bool:
        """Park up to *timeout* seconds for a worker pipe to become
        readable, then absorb it.  Returns True when acks are (now)
        buffered or nothing is outstanding.

        This is the blocking half of the old ``step()``: opt-in, so
        only standalone loops (``Flux.drain``, benchmarks, tests) pay
        it and the loop-hosted pump never does.
        """
        if any(self._ack_buffer.values()):
            return True
        if not any(self._outstanding[w] for w in self.alive_ids()):
            return True
        conns = [h.data for h in self._workers.values() if h.alive]
        if not conns:
            return False
        try:
            multiprocessing.connection.wait(  # tcq: allow[TCQ701] opt-in bounded park for standalone drive loops; the loop-hosted pump calls tick(wait=False) and never reaches this
                conns,
                timeout=self.step_wait_s if timeout is None else timeout)
        except OSError:
            return False
        for handle in self._workers.values():
            self._drain(handle)
        return any(self._ack_buffer.values())

    def poll_acks(self) -> AckMap:
        for handle in self._workers.values():
            self._drain(handle)
        out: AckMap = {}
        for wid, acks in self._ack_buffer.items():
            if acks:
                out[wid] = list(acks)
                acks.clear()
        return out

    # -- ClusterBackend: health ----------------------------------------------
    def backlog(self, machine_id: str) -> int:
        # enqueue() counts rows immediately, flushed or not, so the
        # outstanding counter already covers the outbox.
        if not self._handle(machine_id).alive:
            return 0
        return self._outstanding[machine_id]

    def applied_count(self, machine_id: str, pid: int) -> int:
        return self._applied[machine_id].get(pid, 0)

    def processed_count(self, machine_id: str) -> int:
        return self._processed[machine_id]

    def heartbeat(self) -> Dict[str, Dict[str, Any]]:
        out = super().heartbeat()
        for wid, handle in self._workers.items():
            out[wid]["pid"] = handle.process.pid
            out[wid].update(handle.last_heartbeat)
        return out

    # -- ClusterBackend: failure ---------------------------------------------
    def fail(self, machine_id: str) -> None:
        """Crash the worker for real: SIGKILL, no goodbye.  Its queued
        rows and partition states die with it — exactly the failure
        model Flux's process pairs are built around."""
        handle = self._handle(machine_id)
        if not handle.alive:
            raise ClusterError(f"machine {machine_id!r} is already dead")
        handle.alive = False
        proc = handle.process
        if proc.pid is not None and proc.is_alive():
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass
        proc.join(timeout=5)
        for conn in (handle.ctrl, handle.data):
            try:
                conn.close()
            except OSError:
                pass
        handle.outbox.clear()
        self._outstanding[machine_id] = 0
        self._ack_buffer[machine_id].clear()

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Graceful teardown: shutdown command, then SIGTERM, then
        SIGKILL.  Idempotent; also runs from atexit so crashed callers
        cannot leak workers."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers.values():
            if not handle.alive:
                continue
            try:
                self._rpc(handle.worker_id, "shutdown")
            except ClusterError:
                pass
        for handle in self._workers.values():
            proc = handle.process
            if not handle.alive or proc.pid is None:
                continue
            proc.join(timeout=2)
            if proc.is_alive():
                proc.terminate()          # SIGTERM
                proc.join(timeout=2)
            if proc.is_alive():
                proc.kill()               # SIGKILL, last resort
                proc.join(timeout=2)
            handle.alive = False
            for conn in (handle.ctrl, handle.data):
                try:
                    conn.close()
                except OSError:
                    pass
        _LIVE_BACKENDS.discard(self)

    # -- telemetry -----------------------------------------------------------
    def _publish_telemetry(self) -> None:
        reg = get_registry()
        elapsed = max(now() - self._started_at, 1e-9)
        processed = reg.counter(
            "tcq_flux_worker_processed_total",
            "Tuples applied per worker process", ("backend", "worker"),
            collected=True)
        throughput = reg.gauge(
            "tcq_flux_worker_throughput",
            "Per-worker wall-clock throughput (tuples/s)",
            ("backend", "worker"), collected=True)
        backlog = reg.gauge(
            "tcq_flux_worker_backlog",
            "Routed-but-unacknowledged rows per worker",
            ("backend", "worker"), collected=True)
        for wid in self._workers:
            processed.labels(self._telemetry_id, wid).set_total(
                self._processed[wid])
            throughput.labels(self._telemetry_id, wid).set(
                self._processed[wid] / elapsed)
            backlog.labels(self._telemetry_id, wid).set(
                self._outstanding[wid]
                if self._workers[wid].alive else 0)


class LoopbackBackend(ClusterBackend):
    """The multiprocess data path with zero processes.

    Runs real :class:`WorkerCore` instances in-process, pushing every
    row and command through the same ``repro.net.frames`` encode/decode
    round trip the pipes use.  Deterministic (workers apply everything
    each step, in machine order), so tier-1 property tests can prove
    simulated-vs-worker-core parity without spawning anything.
    """

    def __init__(self, workers: Any = 2,
                 spins: Optional[Dict[str, int]] = None):
        if isinstance(workers, int):
            worker_ids = [f"w{i}" for i in range(workers)]
        else:
            worker_ids = list(workers)
        if not worker_ids:
            raise ClusterError("need at least one worker")
        spins = dict(spins or {})
        self._cores: Dict[str, WorkerCore] = {
            wid: WorkerCore(wid, spins.get(wid, 0)) for wid in worker_ids}
        self._dead: Set[str] = set()
        self._outbox: Dict[str, List[TypingTuple[int, int, Dict[str, Any]]]] \
            = {wid: [] for wid in worker_ids}
        self._applied: Dict[str, Dict[int, int]] = \
            {wid: {} for wid in worker_ids}
        self._processed: Dict[str, int] = {wid: 0 for wid in worker_ids}

    # -- codec round trip ----------------------------------------------------
    @staticmethod
    def _roundtrip(frame: Dict[str, Any], max_frame: int) -> Dict[str, Any]:
        decoder = FrameDecoder(max_frame=max_frame)
        (out,) = decoder.feed(encode_frame(frame, max_frame=max_frame))
        return out

    def _core(self, machine_id: str) -> WorkerCore:
        core = self._cores.get(machine_id)
        if core is None:
            raise ClusterError(f"unknown machine {machine_id!r}")
        return core

    def _ctrl(self, machine_id: str, cmd: str, **fields: Any
              ) -> Dict[str, Any]:
        if machine_id in self._dead:
            raise ClusterError(f"machine {machine_id!r} is dead")
        frame: Dict[str, Any] = {"op": "execute_command", "id": 0,
                                 "cmd": cmd}
        frame.update(fields)
        reply = self._core(machine_id).on_control(
            self._roundtrip(frame, CTRL_MAX_FRAME))
        reply = self._roundtrip(reply, CTRL_MAX_FRAME)
        if reply.get("type") != "execution_succeeded":
            raise ClusterError(
                f"{cmd!r} failed on {machine_id!r}: {reply.get('error')}")
        return reply

    # -- ClusterBackend ------------------------------------------------------
    def configure(self, state_factory: Callable[[], PartitionState]) -> None:
        blob = _to_b64(state_factory)
        for wid in self._cores:
            if wid not in self._dead:
                self._ctrl(wid, "configure", factory=blob)

    def machine_ids(self) -> List[str]:
        return list(self._cores)

    def alive_ids(self) -> List[str]:
        return [wid for wid in self._cores if wid not in self._dead]

    def is_alive(self, machine_id: str) -> bool:
        self._core(machine_id)
        return machine_id not in self._dead

    def create_partition(self, machine_id: str, pid: int) -> None:
        self._ctrl(machine_id, "create", pid=pid)
        self._applied[machine_id][pid] = 0

    def install_partition(self, machine_id: str, pid: int,
                          handoff: PartitionHandoff) -> None:
        snapshot = handoff.snapshot
        if snapshot is None and handoff.state is not None:
            snapshot = handoff.state.snapshot()
        self._ctrl(machine_id, "install", pid=pid, snapshot=_to_b64(snapshot))
        self._applied[machine_id][pid] = handoff.applied

    def remove_partition(self, machine_id: str,
                         pid: int) -> Optional[PartitionHandoff]:
        reply = self._ctrl(machine_id, "remove", pid=pid)
        if not reply.get("present"):
            return None
        return PartitionHandoff(_from_b64(reply["snapshot"]),
                                int(reply["size"]), int(reply["applied"]))

    def snapshot_partition(self, machine_id: str,
                           pid: int) -> Optional[PartitionHandoff]:
        if machine_id in self._dead:
            return None
        reply = self._ctrl(machine_id, "snapshot", pid=pid)
        if not reply.get("present"):
            return None
        return PartitionHandoff(_from_b64(reply["snapshot"]),
                                int(reply["size"]), int(reply["applied"]))

    def enqueue(self, machine_id: str, pid: int, seq: int,
                t: Tuple) -> None:
        self._core(machine_id)
        if machine_id in self._dead:
            raise ClusterError(f"enqueue on dead machine {machine_id}")
        self._outbox[machine_id].append((pid, seq, tuple_to_wire(t)))

    def step(self) -> AckMap:
        out: AckMap = {}
        for wid, core in self._cores.items():
            if wid in self._dead or not self._outbox[wid]:
                continue
            rows, self._outbox[wid] = self._outbox[wid], []
            frame = self._roundtrip(
                {"op": "data",
                 "rows": [[pid, seq, wire] for pid, seq, wire in rows]},
                DATA_MAX_FRAME)
            acks: List[TypingTuple[int, int]] = []
            for reply in core.on_data(frame):
                reply = self._roundtrip(reply, DATA_MAX_FRAME)
                acks.extend((int(p), int(s)) for p, s in reply["acks"])
            per_machine = self._applied[wid]
            for pid, _seq in acks:
                per_machine[pid] = per_machine.get(pid, 0) + 1
            self._processed[wid] += len(acks)
            if acks:
                out[wid] = acks
        return out

    def backlog(self, machine_id: str) -> int:
        if machine_id in self._dead:
            return 0
        return len(self._outbox[machine_id])

    def applied_count(self, machine_id: str, pid: int) -> int:
        return self._applied[machine_id].get(pid, 0)

    def processed_count(self, machine_id: str) -> int:
        return self._processed[machine_id]

    def fail(self, machine_id: str) -> None:
        self._core(machine_id)
        if machine_id in self._dead:
            raise ClusterError(f"machine {machine_id!r} is already dead")
        self._dead.add(machine_id)
        self._outbox[machine_id].clear()
        self._cores[machine_id].partitions.clear()
