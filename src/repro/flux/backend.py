"""The ClusterBackend protocol: Flux's one window onto a cluster.

Flux (Section 2.4) needs surprisingly little from the substrate it
partitions work across: spawn a partition's state somewhere, route a
tuple at a machine, collect acknowledgements, read backlogs, hand a
partition's state from one machine to another, and kill a machine.
Everything else — the in-flight ledger, placement maps, move and
failover protocols — is Flux's own bookkeeping and never needs to see
*how* machines run.

This module pins that contract down as :class:`ClusterBackend` so the
same Flux code drives two substrates:

* :class:`SimulatedBackend` — the original virtual
  :class:`~repro.flux.cluster.Cluster` with its deterministic tick
  clock.  Tier-1 tests and trend benchmarks run here: zero processes,
  bit-stable scheduling, simulated-tick timings.
* :class:`~repro.flux.procs.MultiprocessBackend` — real spawned worker
  processes connected by pipes carrying
  :mod:`repro.net.frames`-encoded messages.  Balance and recovery
  become *wall-clock* quantities.

State crosses machines only as a :class:`PartitionHandoff`: the
snapshot (as produced by :meth:`PartitionState.snapshot`), its size
(the cost driver of a move) and its applied count (the loss accounting
unit).  The simulated backend may additionally pass the live state
object so an intra-simulation move stays a pointer swap, exactly as the
pre-backend code behaved.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple as TypingTuple

from repro.analysis import sanitize
from repro.core.tuples import Tuple
from repro.errors import ClusterError
from repro.flux.cluster import Cluster, PartitionState

#: Acks as returned by ``step``/``poll_acks``: machine id -> [(pid, seq)].
AckMap = Dict[str, List[TypingTuple[int, int]]]


class PartitionHandoff:
    """One partition's state in transit between machines.

    ``snapshot`` is always present and deep-copyable; ``state`` is an
    optional live :class:`PartitionState` for same-process moves (the
    simulated backend uses it so a move does not pay a snapshot
    round-trip, matching the historical pointer-swap semantics).
    """

    __slots__ = ("snapshot", "size", "applied", "state")

    def __init__(self, snapshot: Any, size: int, applied: int,
                 state: Optional[PartitionState] = None):
        self.snapshot = snapshot
        self.size = size
        self.applied = applied
        self.state = state

    def __repr__(self) -> str:
        return (f"PartitionHandoff(size={self.size}, "
                f"applied={self.applied})")


class ClusterBackend:
    """The substrate contract Flux programs against.

    Concrete backends implement machine lifecycle, routing, and state
    handoff; the base class supplies derived metrics (imbalance) and
    the context-manager lifecycle.  All methods are synchronous from
    Flux's point of view — a multiprocess backend hides its pipes
    behind them.
    """

    # -- configuration ------------------------------------------------------
    def configure(self, state_factory: Callable[[], PartitionState]) -> None:
        """Install the partition-state factory.  Must be called before
        any ``create_partition``; a multiprocess backend requires the
        factory to be picklable (module-level callable or
        ``functools.partial`` of one)."""
        raise NotImplementedError

    # -- membership ---------------------------------------------------------
    def machine_ids(self) -> List[str]:
        raise NotImplementedError

    def alive_ids(self) -> List[str]:
        raise NotImplementedError

    def is_alive(self, machine_id: str) -> bool:
        raise NotImplementedError

    # -- partition state ----------------------------------------------------
    def create_partition(self, machine_id: str, pid: int) -> None:
        """Spawn a fresh (empty) state for ``pid`` on ``machine_id``."""
        raise NotImplementedError

    def install_partition(self, machine_id: str, pid: int,
                          handoff: PartitionHandoff) -> None:
        """Install moved/replicated state for ``pid`` on ``machine_id``."""
        raise NotImplementedError

    def remove_partition(self, machine_id: str,
                         pid: int) -> Optional[PartitionHandoff]:
        """Detach ``pid`` from ``machine_id`` and return its state."""
        raise NotImplementedError

    def snapshot_partition(self, machine_id: str,
                           pid: int) -> Optional[PartitionHandoff]:
        """Copy ``pid``'s state on ``machine_id`` without detaching it.

        Backends must barrier this against in-flight data: every tuple
        already routed at the machine is applied before the snapshot is
        taken (the multiprocess backend drains the data pipe to a
        marker; the simulated backend is trivially ordered).
        """
        raise NotImplementedError

    def peek_partition(self, machine_id: str,
                       pid: int) -> Optional[PartitionState]:
        """The live state object where one exists in this process —
        a read-only fast path for result merging.  Backends whose state
        lives elsewhere return None and callers fall back to
        ``snapshot_partition``."""
        return None

    # -- data plane ---------------------------------------------------------
    def enqueue(self, machine_id: str, pid: int, seq: int,
                t: Tuple) -> None:
        raise NotImplementedError

    def step(self) -> AckMap:
        """Let machines work; collect acknowledgements.  Must not block:
        a step may run on the event-loop thread when the conductor is a
        scheduler unit (see ``FluxPump``)."""
        raise NotImplementedError

    def wait_for_acks(self, timeout: Optional[float] = None) -> bool:
        """Optionally park until acknowledgements are likely available.

        Synchronous backends do their work inside :meth:`step`, so acks
        are immediate and there is never anything to wait for — the
        default just reports that.  Backends with real asynchronous
        workers override this with a bounded wait so *standalone* drive
        loops (``Flux.drain``) don't spin; loop-hosted callers must
        never invoke it.
        """
        return True

    def poll_acks(self) -> AckMap:
        """Drain any already-available acknowledgements *without*
        driving new work.  Backends with asynchronous workers override
        this so Flux can sync its ledger mid-protocol (e.g. before
        computing what to forward to a fresh replica)."""
        return {}

    # -- health -------------------------------------------------------------
    def backlog(self, machine_id: str) -> int:
        raise NotImplementedError

    def backlogs(self) -> Dict[str, int]:
        """Per-alive-machine queued/unacknowledged work."""
        return {mid: self.backlog(mid) for mid in self.alive_ids()}

    def imbalance(self) -> float:
        """max/mean backlog across alive machines (1.0 = balanced)."""
        values = list(self.backlogs().values())
        if not values:
            return 0.0
        mean = sum(values) / len(values)
        if mean == 0:
            return 1.0
        return max(values) / mean

    def heartbeat(self) -> Dict[str, Dict[str, Any]]:
        """Last-known per-machine health: at least ``alive``,
        ``backlog`` and ``processed``."""
        out: Dict[str, Dict[str, Any]] = {}
        for mid in self.machine_ids():
            alive = self.is_alive(mid)
            out[mid] = {
                "alive": alive,
                "backlog": self.backlog(mid) if alive else 0,
                "processed": self.processed_count(mid),
            }
        return out

    def applied_count(self, machine_id: str, pid: int) -> int:
        """Tuples applied into ``pid``'s state on ``machine_id`` (dead
        machines included) — the unit of loss accounting."""
        raise NotImplementedError

    def processed_count(self, machine_id: str) -> int:
        raise NotImplementedError

    def total_processed(self) -> int:
        return sum(self.processed_count(mid) for mid in self.machine_ids())

    # -- failure ------------------------------------------------------------
    def fail(self, machine_id: str) -> None:
        """Crash the machine: its queued work and state are gone."""
        raise NotImplementedError

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Release substrate resources (idempotent)."""

    def __enter__(self) -> "ClusterBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SimulatedBackend(ClusterBackend):
    """The deterministic tier-1 substrate: virtual machines on a tick
    clock, adapted to the backend protocol.

    The wrapped :class:`~repro.flux.cluster.Cluster` remains fully
    inspectable (tests poke machines directly), and moves pass live
    state objects so behaviour is bit-identical to the pre-backend
    Flux."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._factory: Optional[Callable[[], PartitionState]] = None

    # -- configuration ------------------------------------------------------
    def configure(self, state_factory: Callable[[], PartitionState]) -> None:
        # The simulated backend never pickles, so a factory that would
        # break the real multiprocess backend sails through silently.
        # Under REPRO_SANITIZE=1 it is held to the same standard.
        sanitize.assert_picklable(state_factory, "state factory")
        self._factory = state_factory

    def _require_factory(self) -> Callable[[], PartitionState]:
        if self._factory is None:
            raise ClusterError("backend not configured with a state factory")
        return self._factory

    # -- membership ---------------------------------------------------------
    def machine_ids(self) -> List[str]:
        return list(self.cluster.machines)

    def alive_ids(self) -> List[str]:
        return [m.machine_id for m in self.cluster.alive_machines()]

    def is_alive(self, machine_id: str) -> bool:
        return self.cluster.machine(machine_id).alive

    # -- partition state ----------------------------------------------------
    def create_partition(self, machine_id: str, pid: int) -> None:
        machine = self.cluster.machine(machine_id)
        machine.partitions[pid] = self._require_factory()()

    def install_partition(self, machine_id: str, pid: int,
                          handoff: PartitionHandoff) -> None:
        machine = self.cluster.machine(machine_id)
        if handoff.state is not None:
            machine.partitions[pid] = handoff.state
            return
        state_cls = type(self._require_factory()())
        machine.partitions[pid] = state_cls.from_snapshot(handoff.snapshot)

    def remove_partition(self, machine_id: str,
                         pid: int) -> Optional[PartitionHandoff]:
        machine = self.cluster.machine(machine_id)
        state = machine.partitions.pop(pid, None)
        if state is None:
            return None
        return PartitionHandoff(None, state.size(),
                                getattr(state, "applied", 0), state=state)

    def snapshot_partition(self, machine_id: str,
                           pid: int) -> Optional[PartitionHandoff]:
        state = self.peek_partition(machine_id, pid)
        if state is None:
            return None
        snapshot = sanitize.assert_picklable(state.snapshot(),
                                             "partition snapshot")
        return PartitionHandoff(snapshot, state.size(),
                                getattr(state, "applied", 0))

    def peek_partition(self, machine_id: str,
                       pid: int) -> Optional[PartitionState]:
        machine = self.cluster.machine(machine_id)
        if not machine.alive:
            return None
        return machine.partitions.get(pid)

    # -- data plane ---------------------------------------------------------
    def enqueue(self, machine_id: str, pid: int, seq: int,
                t: Tuple) -> None:
        self.cluster.machine(machine_id).enqueue(pid, seq, t)

    def step(self) -> AckMap:
        return self.cluster.step()

    # -- health -------------------------------------------------------------
    def backlog(self, machine_id: str) -> int:
        return self.cluster.machine(machine_id).backlog()

    def applied_count(self, machine_id: str, pid: int) -> int:
        machine = self.cluster.machine(machine_id)
        state = machine.partitions.get(pid)
        if state is None:
            state = machine.lost_partitions.get(pid)
        return getattr(state, "applied", 0) if state is not None else 0

    def processed_count(self, machine_id: str) -> int:
        return self.cluster.machine(machine_id).processed

    # -- failure ------------------------------------------------------------
    def fail(self, machine_id: str) -> None:
        self.cluster.fail(machine_id)


def as_backend(substrate: Any) -> ClusterBackend:
    """Normalise a substrate argument: a bare simulated Cluster is
    wrapped, a backend passes through."""
    if isinstance(substrate, ClusterBackend):
        return substrate
    if isinstance(substrate, Cluster):
        return SimulatedBackend(substrate)
    raise ClusterError(
        f"expected a ClusterBackend or Cluster, got "
        f"{type(substrate).__name__}")
