"""Cluster-based TelegraphCQ: CACQ partitioned over Flux (Section 4.3).

"We are currently extending the Flux module to serve as the basis of
the cluster-based implementation of TelegraphCQ."  This module is that
integration: the shared continuous-query engine becomes the *consumer
operator* of a Flux-partitioned dataflow.

* Every machine hosts one :class:`CACQPartitionState` — a complete CACQ
  engine holding the full query set but seeing only its hash partition
  of the input.
* Streams are partitioned on the **join key**, so every join match is
  partition-local (the classic hash-partitioned join); selection-only
  queries are correct under any partitioning.
* Flux supplies what CACQ alone lacks at cluster scale: online
  repartitioning when machines fall behind, and process-pair failover —
  the partition state (query set, per-query delivery counts, SteM
  contents) is snapshottable, so a promoted replica resumes with no
  lost matches and future joins intact.

:class:`ParallelCACQ` is the user-facing facade: register streams and
queries once; push tuples; read merged per-query delivery counts.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, List, Optional, Sequence, Tuple as TypingTuple

from repro.core.cacq import CACQEngine
from repro.core.tuples import Schema, Tuple
from repro.errors import QueryError
from repro.flux.backend import ClusterBackend, as_backend
from repro.flux.cluster import PartitionState
from repro.flux.flux import Flux
from repro.query.predicates import Predicate


class CACQPartitionState(PartitionState):
    """One partition's share of the shared CQ engine.

    The snapshot carries everything a replica or a moved partition
    needs: stream schemas, the query specs, per-query delivery counts,
    and the SteM contents (as raw rows) so in-flight join state
    survives relocation.
    """

    def __init__(self, schemas: Sequence[Schema],
                 query_specs: Sequence[TypingTuple[TypingTuple[str, ...],
                                                   Predicate]]):
        self._schemas = list(schemas)
        self._specs = [(tuple(streams), predicate)
                       for streams, predicate in query_specs]
        self.engine = CACQEngine()
        for schema in self._schemas:
            self.engine.register_stream(schema)
        self._queries = [
            self.engine.add_query(list(streams), predicate,
                                  callback=lambda t: None,
                                  name=f"pq{i}")
            for i, (streams, predicate) in enumerate(self._specs)]
        self.applied = 0

    # -- consumer contract ----------------------------------------------------
    def apply(self, t: Tuple) -> None:
        (stream,) = t.sources
        self.engine.push_tuple(stream, t)
        self.applied += 1

    def size(self) -> int:
        return self.applied + sum(len(s) for s in
                                  self.engine.stems.values())

    def delivered(self) -> List[int]:
        return [q.delivered for q in self._queries]

    # -- snapshot / restore ------------------------------------------------------
    def snapshot(self) -> Any:
        stem_rows = {
            source: [(t.values, t.timestamp, t.queries)
                     for t in stem.contents()]
            for source, stem in self.engine.stems.items()}
        return {
            "schemas": self._schemas,
            "specs": self._specs,
            "delivered": self.delivered(),
            "applied": self.applied,
            "stem_rows": stem_rows,
        }

    @classmethod
    def from_snapshot(cls, snap: Any) -> "CACQPartitionState":
        state = cls(snap["schemas"], snap["specs"])
        for query, count in zip(state._queries, snap["delivered"]):
            query.delivered = count
        state.applied = snap["applied"]
        schema_by_name = {s.name: s for s in state._schemas}
        for source, rows in snap["stem_rows"].items():
            stem = state.engine.stems.get(source)
            if stem is None:
                continue
            for values, timestamp, queries in rows:
                t = Tuple(schema_by_name[source], tuple(values),
                          timestamp=timestamp)
                t.queries = queries
                stem.build(t)
        return state


class ParallelCACQ:
    """The cluster-parallel shared-CQ engine.

    ``backend`` may be any :class:`~repro.flux.backend.ClusterBackend`
    — a bare simulated :class:`~repro.flux.cluster.Cluster` is wrapped
    automatically, and a
    :class:`~repro.flux.procs.MultiprocessBackend` runs the same
    partitioned engine on real worker processes (the state factory
    built here is a ``functools.partial`` of the class, so it pickles
    across the spawn boundary).
    """

    def __init__(self, backend: Any, partition_column: str,
                 n_partitions: int = 8, replication: int = 0,
                 rebalance_every: int = 0):
        self.backend: ClusterBackend = as_backend(backend)
        self.partition_column = partition_column
        self._schemas: List[Schema] = []
        self._specs: List[TypingTuple[TypingTuple[str, ...], Predicate]] = []
        self._flux: Optional[Flux] = None
        self._flux_kwargs = dict(n_partitions=n_partitions,
                                 replication=replication,
                                 rebalance_every=rebalance_every)

    # -- setup (before the first push) -----------------------------------------
    def register_stream(self, schema: Schema) -> None:
        self._require_not_started()
        for s in self._schemas:
            if s.name == schema.name:
                raise QueryError(f"stream {schema.name!r} already exists")
        if not schema.has_column(self.partition_column):
            raise QueryError(
                f"stream {schema.name!r} lacks partition column "
                f"{self.partition_column!r}; co-partitioned joins need "
                f"it on every stream")
        self._schemas.append(schema)

    def add_query(self, streams: Sequence[str],
                  predicate: Predicate) -> int:
        """Register a query on every partition; returns its index."""
        self._require_not_started()
        known = {s.name for s in self._schemas}
        for stream in streams:
            if stream not in known:
                raise QueryError(f"unknown stream {stream!r}")
        self._specs.append((tuple(streams), predicate))
        return len(self._specs) - 1

    def _require_not_started(self) -> None:
        if self._flux is not None:
            raise QueryError(
                "this parallel engine is already running; register "
                "streams and queries before the first push")

    def _ensure_started(self) -> Flux:
        if self._flux is None:
            column = self.partition_column
            self._flux = Flux(
                self.backend,
                key_fn=lambda t: t[column],
                state_factory=functools.partial(
                    CACQPartitionState, list(self._schemas),
                    list(self._specs)),
                **self._flux_kwargs)
        return self._flux

    # -- runtime --------------------------------------------------------------
    def tick(self, arriving: Optional[List[Tuple]] = None) -> int:
        return self._ensure_started().tick(arriving)

    def drain(self) -> int:
        return self._ensure_started().drain()

    def fail_machine(self, machine_id: str) -> Dict[str, int]:
        flux = self._ensure_started()
        self.backend.fail(machine_id)
        return flux.on_machine_failure(machine_id)

    # -- results ----------------------------------------------------------------
    def delivered_counts(self) -> List[int]:
        """Per-query delivery counts merged across partitions."""
        flux = self._ensure_started()
        totals = [0] * len(self._specs)
        for pid in flux.primary:
            state = flux.partition_state(pid)
            if state is None:
                continue
            for i, count in enumerate(state.delivered()):
                totals[i] += count
        return totals

    @property
    def flux(self) -> Flux:
        return self._ensure_started()
