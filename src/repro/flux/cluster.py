"""A simulated shared-nothing cluster (substrate for Flux, Section 2.4).

The paper's Flux experiments ran on a real cluster; here machines are
simulated with a discrete clock: each tick, an alive machine processes
up to ``speed`` queued work items into its local partition states.
Machines can fail (losing their queue contents and partition state,
exactly the failure model Flux is designed around) and can be
heterogeneous in speed, which is one of the imbalance sources online
repartitioning must absorb.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Tuple as TypingTuple

from repro.core.tuples import Tuple
from repro.errors import ClusterError


class PartitionState:
    """Movable consumer state for one partition.

    Flux's state-movement protocol ships these objects between machines;
    concrete subclasses define the operator semantics.
    """

    def apply(self, t: Tuple) -> None:
        raise NotImplementedError

    def size(self) -> int:
        """State volume (tuples/groups) — the cost driver of a move."""
        raise NotImplementedError

    def snapshot(self) -> Any:
        """A deep-copyable representation, for replicas."""
        raise NotImplementedError

    @classmethod
    def from_snapshot(cls, snap: Any) -> "PartitionState":
        raise NotImplementedError


class GroupCountState(PartitionState):
    """Per-group counters — a partitioned COUNT GROUP BY consumer."""

    def __init__(self, key_column: str):
        self.key_column = key_column
        self.counts: Dict[Any, int] = {}
        self.applied = 0

    def apply(self, t: Tuple) -> None:
        key = t[self.key_column]
        self.counts[key] = self.counts.get(key, 0) + 1
        self.applied += 1

    def size(self) -> int:
        return len(self.counts)

    def snapshot(self) -> Any:
        return (self.key_column, dict(self.counts), self.applied)

    @classmethod
    def from_snapshot(cls, snap: Any) -> "GroupCountState":
        key_column, counts, applied = snap
        state = cls(key_column)
        state.counts = dict(counts)
        state.applied = applied
        return state


class Machine:
    """One simulated shared-nothing node."""

    def __init__(self, machine_id: str, speed: int = 100):
        if speed < 1:
            raise ClusterError("machine speed must be >= 1")
        self.machine_id = machine_id
        self.speed = speed
        self.alive = True
        #: queued work: (partition id, sequence number, tuple).
        self.queue: Deque[TypingTuple[int, int, Tuple]] = deque()
        #: hosted partition states by partition id.
        self.partitions: Dict[int, PartitionState] = {}
        self.processed = 0
        self.busy_ticks = 0
        self.idle_ticks = 0
        self.lost_partitions: Dict[int, PartitionState] = {}

    def enqueue(self, pid: int, seq: int, t: Tuple) -> None:
        if not self.alive:
            raise ClusterError(
                f"enqueue on dead machine {self.machine_id}")
        self.queue.append((pid, seq, t))

    def step(self) -> List[TypingTuple[int, int]]:
        """Process up to ``speed`` items; returns (pid, seq) acks."""
        if not self.alive:
            return []
        acks: List[TypingTuple[int, int]] = []
        budget = self.speed
        while budget and self.queue:
            pid, seq, t = self.queue.popleft()
            state = self.partitions.get(pid)
            if state is not None:
                state.apply(t)
            acks.append((pid, seq))
            budget -= 1
        if acks:
            self.busy_ticks += 1
        else:
            self.idle_ticks += 1
        self.processed += len(acks)
        return acks

    def backlog(self) -> int:
        return len(self.queue)

    def fail(self) -> None:
        """Crash: queue contents and partition states are lost.

        The lost state is stashed on ``lost_partitions`` purely for the
        simulator's post-mortem accounting (how much work was lost); no
        recovery path reads it.
        """
        self.alive = False
        self.queue.clear()
        self.lost_partitions = dict(self.partitions)
        self.partitions.clear()

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return (f"Machine({self.machine_id}, {state}, speed={self.speed}, "
                f"backlog={len(self.queue)})")


class Cluster:
    """The set of machines plus a global tick counter."""

    def __init__(self) -> None:
        self.machines: Dict[str, Machine] = {}
        self.ticks = 0

    def add_machine(self, machine_id: str, speed: int = 100) -> Machine:
        if machine_id in self.machines:
            raise ClusterError(f"duplicate machine id {machine_id!r}")
        m = Machine(machine_id, speed)
        self.machines[machine_id] = m
        return m

    def machine(self, machine_id: str) -> Machine:
        try:
            return self.machines[machine_id]
        except KeyError:
            raise ClusterError(f"unknown machine {machine_id!r}") from None

    def alive_machines(self) -> List[Machine]:
        return [m for m in self.machines.values() if m.alive]

    def step(self) -> Dict[str, List[TypingTuple[int, int]]]:
        """Advance every machine one tick; returns per-machine acks."""
        self.ticks += 1
        return {mid: m.step() for mid, m in self.machines.items()
                if m.alive}

    def fail(self, machine_id: str) -> Machine:
        m = self.machine(machine_id)
        if not m.alive:
            raise ClusterError(f"machine {machine_id!r} is already dead")
        m.fail()
        return m

    def total_processed(self) -> int:
        return sum(m.processed for m in self.machines.values())

    def imbalance(self) -> float:
        """max/mean backlog across alive machines (1.0 = balanced)."""
        backlogs = [m.backlog() for m in self.alive_machines()]
        if not backlogs:
            return 0.0
        mean = sum(backlogs) / len(backlogs)
        if mean == 0:
            return 1.0
        return max(backlogs) / mean
