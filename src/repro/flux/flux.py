"""Flux: the Fault-tolerant, Load-balancing eXchange (Section 2.4).

Flux generalises Graefe's Exchange: it partitions an input stream across
consumer instances on a cluster and, unlike Exchange, can

* **repartition online** — when machine backlogs diverge, a partition is
  moved from the most loaded to the least loaded machine.  The state
  movement protocol pauses the partition's input (new tuples buffer
  inside Flux), waits for the old host to drain the partition's queued
  work, ships the state, then replays the buffer to the new host — the
  paper's "buffering and reordering mechanisms";
* **fail over** — with ``replication = 1`` each partition keeps a
  process-pair replica on another machine receiving the same input; on
  a crash the replica is promoted and no data is lost, because every
  in-flight tuple is tracked until *both* copies acknowledge it;
* expose a **QoS knob** — replication costs duplicate work (throughput)
  and buys zero-loss recovery; degree 0 trades the reverse.  Experiment
  E7 measures both sides.

Delivery tracking: each routed tuple carries a sequence number and an
*acknowledgement set* — the machine ids still expected to apply it.  A
machine's crash removes it from every pending set (it will never ack);
whatever was pending **only** on the dead machine is replayed to the
partition's new home.  With a live replica nothing is ever pending only
on the primary, which is exactly why process pairs lose nothing.
"""

from __future__ import annotations

import itertools
import zlib
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple as TypingTuple

from repro.core.tuples import Tuple
from repro.errors import ClusterError
from repro.flux.cluster import Cluster, Machine, PartitionState
from repro.monitor.telemetry import get_registry
from repro.sched import FunctionUnit, Scheduler, SchedulerStall

_FLUX_IDS = itertools.count()


class PartitionMove:
    """Bookkeeping for one in-progress state movement."""

    __slots__ = ("pid", "source", "target", "buffered", "state_size")

    def __init__(self, pid: int, source: str, target: str):
        self.pid = pid
        self.source = source
        self.target = target
        self.buffered: Deque[TypingTuple[int, Tuple]] = deque()
        self.state_size = 0


class Flux:
    """The operator: partitioned routing + balancing + failover."""

    def __init__(self, cluster: Cluster, n_partitions: int,
                 key_fn: Callable[[Tuple], Any],
                 state_factory: Callable[[], PartitionState],
                 replication: int = 0,
                 rebalance_every: int = 0,
                 imbalance_threshold: float = 2.0):
        if replication not in (0, 1):
            raise ClusterError("replication degree must be 0 or 1")
        machines = cluster.alive_machines()
        if not machines:
            raise ClusterError("cluster has no machines")
        if replication and len(machines) < 2:
            raise ClusterError("replication needs at least two machines")
        self.cluster = cluster
        self.n_partitions = n_partitions
        self.key_fn = key_fn
        self.state_factory = state_factory
        self.replication = replication
        self.rebalance_every = rebalance_every
        self.imbalance_threshold = imbalance_threshold
        self._seq = itertools.count()
        # Placement: round-robin primaries; replicas offset by one so a
        # process pair never shares a machine.
        self.primary: Dict[int, str] = {}
        self.replica: Dict[int, str] = {}
        for pid in range(n_partitions):
            host = machines[pid % len(machines)]
            host.partitions[pid] = state_factory()
            self.primary[pid] = host.machine_id
            if replication:
                mirror = machines[(pid + 1) % len(machines)]
                mirror.partitions[pid] = state_factory()
                self.replica[pid] = mirror.machine_id
        #: per-partition in-flight ledger: seq -> (tuple, machines that
        #: still owe an acknowledgement).
        self._unacked: Dict[int, Dict[int, TypingTuple[Tuple, Set[str]]]] = \
            {pid: {} for pid in range(n_partitions)}
        self._moves: Dict[int, PartitionMove] = {}
        self.routed = 0
        self.moves_completed = 0
        self.state_moved = 0
        self.recovered_partitions = 0
        self.lost_tuples = 0
        self.replayed_tuples = 0
        self.backlog_history: List[Dict[str, int]] = []
        self._telemetry = get_registry()
        self._telemetry_id = f"flux#{next(_FLUX_IDS)}"
        self._telemetry.register_collector(self._publish_telemetry)

    # -- routing --------------------------------------------------------------
    @staticmethod
    def _stable_hash(value: Any) -> int:
        """A hash that is identical across processes (Python's str hash
        is randomized per run, which would make partition placement —
        and so benchmarks — nondeterministic)."""
        if isinstance(value, int):
            return value
        if isinstance(value, str):
            return zlib.crc32(value.encode())
        return zlib.crc32(repr(value).encode())

    def partition_of(self, t: Tuple) -> int:
        return self._stable_hash(self.key_fn(t)) % self.n_partitions

    def route(self, tuples: List[Tuple]) -> int:
        """Send tuples towards their partitions' hosts."""
        for t in tuples:
            pid = self.partition_of(t)
            seq = next(self._seq)
            move = self._moves.get(pid)
            if move is not None:
                move.buffered.append((seq, t))   # paused for movement
                continue
            self._send(pid, seq, t)
        self.routed += len(tuples)
        return len(tuples)

    def _send(self, pid: int, seq: int, t: Tuple) -> None:
        targets = [self.primary[pid]]
        mirror = self.replica.get(pid)
        if mirror is not None:
            targets.append(mirror)
        self._unacked[pid][seq] = (t, set(targets))
        for machine_id in targets:
            self.cluster.machine(machine_id).enqueue(pid, seq, t)

    # -- the simulation loop -----------------------------------------------------
    def tick(self, arriving: Optional[List[Tuple]] = None) -> int:
        """One epoch: route arrivals, let machines work, collect acks,
        progress moves, maybe rebalance.  Returns fully-acked count."""
        if arriving:
            self.route(arriving)
        acked = self._collect_acks(self.cluster.step())
        self._progress_moves()
        if self.rebalance_every and \
                self.cluster.ticks % self.rebalance_every == 0:
            self.maybe_rebalance()
        self.backlog_history.append(
            {m.machine_id: m.backlog()
             for m in self.cluster.alive_machines()})
        return acked

    def _collect_acks(self,
                      acks: Dict[str, List[TypingTuple[int, int]]]) -> int:
        done = 0
        for machine_id, machine_acks in acks.items():
            for pid, seq in machine_acks:
                entry = self._unacked[pid].get(seq)
                if entry is None:
                    continue
                _t, pending = entry
                pending.discard(machine_id)
                if not pending:
                    del self._unacked[pid][seq]
                    done += 1
        return done

    # -- online repartitioning -----------------------------------------------------
    def maybe_rebalance(self) -> Optional[int]:
        """Move one partition off the most backlogged machine when the
        cluster is imbalanced; returns the moved pid or None."""
        alive = self.cluster.alive_machines()
        if len(alive) < 2 or self._moves:
            return None
        if self.cluster.imbalance() < self.imbalance_threshold:
            return None
        loaded = max(alive, key=Machine.backlog)
        light = min(alive, key=Machine.backlog)
        if loaded.machine_id == light.machine_id or loaded.backlog() == 0:
            return None
        candidates = [pid for pid, host in self.primary.items()
                      if host == loaded.machine_id
                      and self.replica.get(pid) != light.machine_id]
        if not candidates:
            return None
        # Move the partition with the largest queued share on the loaded
        # machine — relieves the most pressure per move.
        queued: Dict[int, int] = {pid: 0 for pid in candidates}
        for pid, _seq, _t in loaded.queue:
            if pid in queued:
                queued[pid] += 1
        pid = max(candidates, key=lambda p: queued[p])
        if queued[pid] == 0:
            return None
        self._moves[pid] = PartitionMove(pid, loaded.machine_id,
                                         light.machine_id)
        return pid

    def _progress_moves(self) -> None:
        """A move completes once the source drains the partition's
        queued work; then the state ships and the buffer replays."""
        for pid, move in list(self._moves.items()):
            source = self.cluster.machine(move.source)
            if source.alive and any(q_pid == pid
                                    for q_pid, _s, _t in source.queue):
                continue  # still draining
            target = self.cluster.machine(move.target)
            if source.alive and pid in source.partitions:
                state = source.partitions.pop(pid)
            else:
                state = self._state_from_replica(pid)
            target.partitions[pid] = state
            self.primary[pid] = move.target
            self.state_moved += state.size()
            move.state_size = state.size()
            del self._moves[pid]
            self.moves_completed += 1
            for seq, t in move.buffered:
                self._send(pid, seq, t)

    def _state_from_replica(self, pid: int) -> PartitionState:
        mirror_id = self.replica.get(pid)
        if mirror_id is not None:
            mirror = self.cluster.machine(mirror_id)
            if mirror.alive and pid in mirror.partitions:
                snap = mirror.partitions[pid].snapshot()
                return type(mirror.partitions[pid]).from_snapshot(snap)
        return self.state_factory()

    # -- failover -------------------------------------------------------------------
    def on_machine_failure(self, machine_id: str) -> Dict[str, int]:
        """React to a crash: promote replicas or restart partitions,
        replay whatever was pending only on the dead machine, and
        re-establish replication.  Call after ``cluster.fail(...)``.
        """
        dead = self.cluster.machine(machine_id)
        if dead.alive:
            raise ClusterError(
                f"machine {machine_id!r} has not failed; call "
                "cluster.fail() first")
        alive = self.cluster.alive_machines()
        if not alive:
            raise ClusterError("no surviving machines to recover onto")
        # Abort any move touching the dead machine.  Tuples buffered for
        # a paused partition were never sent anywhere, so they must be
        # re-sent once the partition has a live home again.
        move_buffered: Dict[int, List[TypingTuple[int, Tuple]]] = {}
        for pid, move in list(self._moves.items()):
            if machine_id in (move.source, move.target):
                move_buffered[pid] = list(move.buffered)
                del self._moves[pid]

        promoted = 0
        restarted = 0
        replayed = 0
        for pid in range(self.n_partitions):
            lost_primary = self.primary[pid] == machine_id
            lost_replica = self.replica.get(pid) == machine_id
            # The dead machine will never acknowledge anything.
            orphans: List[TypingTuple[int, Tuple]] = []
            for seq, (t, pending) in list(self._unacked[pid].items()):
                if machine_id in pending:
                    pending.discard(machine_id)
                if not pending:
                    # Pending only on the dead machine -> lost in its
                    # queue; must be replayed to the new home.
                    orphans.append((seq, t))
                    del self._unacked[pid][seq]
            replay_orphans = False
            if lost_primary:
                mirror_id = self.replica.get(pid)
                if mirror_id and self.cluster.machine(mirror_id).alive:
                    # Process-pair failover: the replica already received
                    # (or applied) every orphan, so nothing replays.
                    self.primary[pid] = mirror_id
                    del self.replica[pid]
                    promoted += 1
                else:
                    new_home = min(alive, key=Machine.backlog)
                    lost = dead.lost_partitions.get(pid)
                    self.lost_tuples += lost.applied if lost is not None \
                        and hasattr(lost, "applied") else 0
                    new_home.partitions[pid] = self.state_factory()
                    self.primary[pid] = new_home.machine_id
                    restarted += 1
                    replay_orphans = True
            elif lost_replica:
                # The primary still holds everything; orphans (pending
                # only on the dead replica) are already applied upstream.
                del self.replica[pid]
            if replay_orphans:
                for seq, t in orphans:
                    self._send(pid, seq, t)
                    replayed += 1
                self.replayed_tuples += len(orphans)
            if (lost_primary or lost_replica) and self.replication:
                self._respawn_replica(pid)
            for seq, t in move_buffered.get(pid, ()):
                self._send(pid, seq, t)
                replayed += 1
        self.recovered_partitions += promoted + restarted
        return {"promoted": promoted, "restarted": restarted,
                "replayed": replayed}

    def _respawn_replica(self, pid: int) -> None:
        """Re-establish the process pair: snapshot the primary's state
        onto a fresh mirror and forward the primary's queued work so the
        copies converge."""
        alive = self.cluster.alive_machines()
        primary_id = self.primary[pid]
        options = [m for m in alive if m.machine_id != primary_id]
        if not options or pid in self.replica:
            return
        mirror = min(options, key=Machine.backlog)
        primary = self.cluster.machine(primary_id)
        state = primary.partitions.get(pid)
        if state is None:
            return
        mirror.partitions[pid] = type(state).from_snapshot(state.snapshot())
        self.replica[pid] = mirror.machine_id
        # Mirror must also see what the primary has queued but not yet
        # applied, and owes an ack for each.
        for q_pid, seq, t in primary.queue:
            if q_pid != pid:
                continue
            entry = self._unacked[pid].get(seq)
            if entry is not None:
                entry[1].add(mirror.machine_id)
            mirror.enqueue(pid, seq, t)

    # -- telemetry ----------------------------------------------------------
    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        flux = self._telemetry_id
        reg.counter("tcq_flux_routed_total",
                    "Tuples routed through Flux", ("flux",),
                    collected=True).labels(flux).set_total(self.routed)
        reg.counter("tcq_flux_moves_total",
                    "Completed partition movements", ("flux",),
                    collected=True).labels(flux).set_total(
            self.moves_completed)
        reg.counter("tcq_flux_state_moved_total",
                    "State entries shipped between machines", ("flux",),
                    collected=True).labels(flux).set_total(self.state_moved)
        reg.counter("tcq_flux_recovered_partitions_total",
                    "Partitions promoted or restarted after failures",
                    ("flux",), collected=True).labels(flux).set_total(
            self.recovered_partitions)
        reg.counter("tcq_flux_replayed_total",
                    "Tuples replayed during recovery", ("flux",),
                    collected=True).labels(flux).set_total(
            self.replayed_tuples)
        reg.counter("tcq_flux_lost_total",
                    "Tuples lost to unreplicated failures", ("flux",),
                    collected=True).labels(flux).set_total(self.lost_tuples)
        reg.gauge("tcq_flux_unacked",
                  "In-flight tuples awaiting acknowledgement", ("flux",),
                  collected=True).labels(flux).set(self.unacked_total())
        reg.gauge("tcq_flux_partition_skew",
                  "Cluster backlog imbalance (max/mean)", ("flux",),
                  collected=True).labels(flux).set(self.cluster.imbalance())
        backlog = reg.gauge("tcq_flux_machine_backlog",
                            "Queued work per live machine",
                            ("flux", "machine"), collected=True)
        for m in self.cluster.alive_machines():
            backlog.labels(flux, m.machine_id).set(m.backlog())

    # -- results ------------------------------------------------------------
    def merged_counts(self) -> Dict[Any, int]:
        """Union the per-partition group counts from current primaries
        (meaningful for GroupCountState consumers)."""
        out: Dict[Any, int] = {}
        for pid, host in self.primary.items():
            machine = self.cluster.machine(host)
            state = machine.partitions.get(pid)
            if state is None:
                continue
            for key, count in getattr(state, "counts", {}).items():
                out[key] = out.get(key, 0) + count
        return out

    def unacked_total(self) -> int:
        return sum(len(v) for v in self._unacked.values())

    def drain(self, max_ticks: int = 100_000) -> int:
        """Run ticks with no new input until everything is acked.

        The drive loop is a throwaway unified-scheduler unit so Flux
        shares the one quiescence/stall protocol with every other run
        loop in the system.
        """
        if not self.unacked_total():
            return 0
        unit = FunctionUnit(
            f"{self._telemetry_id}:drain",
            step=lambda _quantum: bool(self.tick()),
            is_finished=lambda: not self.unacked_total())
        sched = Scheduler(policy="round_robin",
                          name=f"{self._telemetry_id}:drain",
                          telemetry=False)
        sched.add(unit)
        try:
            return sched.run_until_finished(max_passes=max_ticks)
        except SchedulerStall:
            raise ClusterError(
                "flux failed to drain in-flight tuples") from None
