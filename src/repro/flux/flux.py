"""Flux: the Fault-tolerant, Load-balancing eXchange (Section 2.4).

Flux generalises Graefe's Exchange: it partitions an input stream across
consumer instances on a cluster and, unlike Exchange, can

* **repartition online** — when machine backlogs diverge, a partition is
  moved from the most loaded to the least loaded machine.  The state
  movement protocol pauses the partition's input (new tuples buffer
  inside Flux), waits for the old host to drain the partition's queued
  work, ships the state, then replays the buffer to the new host — the
  paper's "buffering and reordering mechanisms";
* **fail over** — with ``replication = 1`` each partition keeps a
  process-pair replica on another machine receiving the same input; on
  a crash the replica is promoted and no data is lost, because every
  in-flight tuple is tracked until *both* copies acknowledge it;
* expose a **QoS knob** — replication costs duplicate work (throughput)
  and buys zero-loss recovery; degree 0 trades the reverse.  Experiment
  E7 measures both sides.

Delivery tracking: each routed tuple carries a sequence number and an
*acknowledgement set* — the machine ids still expected to apply it.  A
machine's crash removes it from every pending set (it will never ack);
whatever was pending **only** on the dead machine is replayed to the
partition's new home.  With a live replica nothing is ever pending only
on the primary, which is exactly why process pairs lose nothing.

Flux itself never touches a machine: it programs exclusively against
the :class:`~repro.flux.backend.ClusterBackend` protocol, so the same
routing/balancing/failover logic runs on the deterministic simulated
cluster (tier-1) and on real worker processes
(:class:`~repro.flux.procs.MultiprocessBackend`), where recovery and
imbalance are wall-clock quantities.  Every question Flux used to
answer by peeking into machine queues is now answered from its own
in-flight ledger — the ledger and the queues are views of the same
un-acknowledged set, and only the ledger exists on this side of a
process boundary.
"""

from __future__ import annotations

import itertools
import zlib
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, \
    Sequence, Set, Tuple as TypingTuple

from repro.core.tuples import Tuple
from repro.errors import ClusterError
from repro.flux.backend import ClusterBackend, PartitionHandoff, as_backend
from repro.flux.cluster import Cluster, PartitionState
from repro.monitor.clock import now
from repro.monitor.telemetry import get_registry
from repro.sched import FunctionUnit, Schedulable, Scheduler, \
    SchedulerStall, StepResult

_FLUX_IDS = itertools.count()


class PartitionMove:
    """Bookkeeping for one in-progress state movement."""

    __slots__ = ("pid", "source", "target", "buffered", "state_size")

    def __init__(self, pid: int, source: str, target: str):
        self.pid = pid
        self.source = source
        self.target = target
        self.buffered: Deque[TypingTuple[int, Tuple]] = deque()
        self.state_size = 0


class Flux:
    """The operator: partitioned routing + balancing + failover."""

    def __init__(self, backend: Any, n_partitions: int,
                 key_fn: Callable[[Tuple], Any],
                 state_factory: Callable[[], PartitionState],
                 replication: int = 0,
                 rebalance_every: int = 0,
                 imbalance_threshold: float = 2.0):
        if replication not in (0, 1):
            raise ClusterError("replication degree must be 0 or 1")
        self.backend: ClusterBackend = as_backend(backend)
        self.backend.configure(state_factory)
        machines = self.backend.alive_ids()
        if not machines:
            raise ClusterError("cluster has no machines")
        if replication and len(machines) < 2:
            raise ClusterError("replication needs at least two machines")
        self.n_partitions = n_partitions
        self.key_fn = key_fn
        self.state_factory = state_factory
        self.replication = replication
        self.rebalance_every = rebalance_every
        self.imbalance_threshold = imbalance_threshold
        self._seq = itertools.count()
        self._epoch = 0
        # Placement: round-robin primaries; replicas offset by one so a
        # process pair never shares a machine.
        self.primary: Dict[int, str] = {}
        self.replica: Dict[int, str] = {}
        for pid in range(n_partitions):
            host = machines[pid % len(machines)]
            self.backend.create_partition(host, pid)
            self.primary[pid] = host
            if replication:
                mirror = machines[(pid + 1) % len(machines)]
                self.backend.create_partition(mirror, pid)
                self.replica[pid] = mirror
        #: per-partition in-flight ledger: seq -> (tuple, machines that
        #: still owe an acknowledgement).
        self._unacked: Dict[int, Dict[int, TypingTuple[Tuple, Set[str]]]] = \
            {pid: {} for pid in range(n_partitions)}
        self._moves: Dict[int, PartitionMove] = {}
        self._state_cls: Optional[type] = None
        self.routed = 0
        self.moves_completed = 0
        self.state_moved = 0
        self.recovered_partitions = 0
        self.lost_tuples = 0
        self.replayed_tuples = 0
        #: wall-clock milliseconds spent inside each on_machine_failure.
        self.recovery_times_ms: List[float] = []
        self.backlog_history: List[Dict[str, int]] = []
        self._telemetry = get_registry()
        self._telemetry_id = f"flux#{next(_FLUX_IDS)}"
        self._telemetry.register_collector(self._publish_telemetry)

    @property
    def cluster(self) -> Cluster:
        """The simulated cluster, where the backend has one (tier-1
        tests inspect machines directly); raises on real backends."""
        cluster = getattr(self.backend, "cluster", None)
        if cluster is None:
            raise ClusterError(
                f"{type(self.backend).__name__} exposes no simulated "
                f"cluster; use the ClusterBackend protocol")
        return cluster

    # -- routing --------------------------------------------------------------
    @staticmethod
    def _stable_hash(value: Any) -> int:
        """A hash that is identical across processes (Python's str hash
        is randomized per run, which would make partition placement —
        and cross-process repartitioning — nondeterministic)."""
        if isinstance(value, int):
            return value
        if isinstance(value, str):
            return zlib.crc32(value.encode())
        return zlib.crc32(repr(value).encode())

    def partition_of(self, t: Tuple) -> int:
        return self._stable_hash(self.key_fn(t)) % self.n_partitions

    def route(self, tuples: List[Tuple]) -> int:
        """Send tuples towards their partitions' hosts."""
        for t in tuples:
            pid = self.partition_of(t)
            seq = next(self._seq)
            move = self._moves.get(pid)
            if move is not None:
                move.buffered.append((seq, t))   # paused for movement
                continue
            self._send(pid, seq, t)
        self.routed += len(tuples)
        return len(tuples)

    def _send(self, pid: int, seq: int, t: Tuple) -> None:
        targets = [self.primary[pid]]
        mirror = self.replica.get(pid)
        if mirror is not None:
            targets.append(mirror)
        self._unacked[pid][seq] = (t, set(targets))
        for machine_id in targets:
            self.backend.enqueue(machine_id, pid, seq, t)

    # -- the drive loop -----------------------------------------------------
    def tick(self, arriving: Optional[List[Tuple]] = None,
             wait: bool = True) -> int:
        """One epoch: route arrivals, let machines work, collect acks,
        progress moves, maybe rebalance.  Returns fully-acked count.

        With ``wait=True`` (standalone drive loops) an idle epoch parks
        briefly in ``backend.wait_for_acks`` instead of spinning.  The
        loop-hosted :class:`FluxPump` passes ``wait=False`` so a tick
        never blocks the event-loop thread it shares with the network
        pump — the scheduler's idle protocol provides the pacing there.
        """
        if arriving:
            self.route(arriving)
        self._epoch += 1
        acked = self._collect_acks(self.backend.step())
        if wait and not acked and self.unacked_total():
            self.backend.wait_for_acks()
            acked += self._collect_acks(self.backend.poll_acks())
        self._progress_moves()
        if self.rebalance_every and \
                self._epoch % self.rebalance_every == 0:
            self.maybe_rebalance()
        self.backlog_history.append(dict(self.backend.backlogs()))
        return acked

    def _collect_acks(self,
                      acks: Dict[str, List[TypingTuple[int, int]]]) -> int:
        done = 0
        for machine_id, machine_acks in acks.items():
            for pid, seq in machine_acks:
                entry = self._unacked[pid].get(seq)
                if entry is None:
                    continue
                _t, pending = entry
                pending.discard(machine_id)
                if not pending:
                    del self._unacked[pid][seq]
                    done += 1
        return done

    def _pending_on(self, machine_id: str, pid: int) -> int:
        """In-flight tuples for ``pid`` still awaiting ``machine_id``'s
        acknowledgement — the ledger's view of that machine's queued
        share of the partition."""
        return sum(1 for _t, pending in self._unacked[pid].values()
                   if machine_id in pending)

    # -- online repartitioning -----------------------------------------------------
    def maybe_rebalance(self) -> Optional[int]:
        """Move one partition off the most backlogged machine when the
        cluster is imbalanced; returns the moved pid or None."""
        alive = self.backend.alive_ids()
        if len(alive) < 2 or self._moves:
            return None
        if self.backend.imbalance() < self.imbalance_threshold:
            return None
        backlogs = self.backend.backlogs()
        loaded = max(alive, key=lambda mid: backlogs.get(mid, 0))
        light = min(alive, key=lambda mid: backlogs.get(mid, 0))
        if loaded == light or backlogs.get(loaded, 0) == 0:
            return None
        candidates = [pid for pid, host in self.primary.items()
                      if host == loaded
                      and self.replica.get(pid) != light]
        if not candidates:
            return None
        # Move the partition with the largest queued share on the loaded
        # machine — relieves the most pressure per move.
        queued = {pid: self._pending_on(loaded, pid) for pid in candidates}
        pid = max(candidates, key=lambda p: queued[p])
        if queued[pid] == 0:
            return None
        self._moves[pid] = PartitionMove(pid, loaded, light)
        return pid

    def _progress_moves(self) -> None:
        """A move completes once the source drains the partition's
        queued work; then the state ships and the buffer replays."""
        for pid, move in list(self._moves.items()):
            source_alive = self.backend.is_alive(move.source)
            if source_alive and self._pending_on(move.source, pid):
                continue  # still draining
            handoff = None
            if source_alive:
                handoff = self.backend.remove_partition(move.source, pid)
            if handoff is None:
                handoff = self._handoff_from_replica(pid)
            if handoff is None:
                self.backend.create_partition(move.target, pid)
                moved_size = 0
            else:
                self.backend.install_partition(move.target, pid, handoff)
                moved_size = handoff.size
            self.primary[pid] = move.target
            self.state_moved += moved_size
            move.state_size = moved_size
            del self._moves[pid]
            self.moves_completed += 1
            for seq, t in move.buffered:
                self._send(pid, seq, t)

    def _handoff_from_replica(self, pid: int) -> Optional[PartitionHandoff]:
        mirror_id = self.replica.get(pid)
        if mirror_id is None or not self.backend.is_alive(mirror_id):
            return None
        return self.backend.snapshot_partition(mirror_id, pid)

    # -- failover -------------------------------------------------------------------
    def on_machine_failure(self, machine_id: str) -> Dict[str, int]:
        """React to a crash: promote replicas or restart partitions,
        replay whatever was pending only on the dead machine, and
        re-establish replication.  Call after ``backend.fail(...)``.

        The wall-clock cost of the whole reaction (promotion, state
        snapshots for fresh replicas, replay) lands in
        ``recovery_times_ms`` — on the multiprocess backend that is
        real recovery time.
        """
        started = now()
        if self.backend.is_alive(machine_id):
            raise ClusterError(
                f"machine {machine_id!r} has not failed; call "
                "backend.fail() first")
        alive = self.backend.alive_ids()
        if not alive:
            raise ClusterError("no surviving machines to recover onto")
        backlogs = self.backend.backlogs()
        # Abort any move touching the dead machine.  Tuples buffered for
        # a paused partition were never sent anywhere, so they must be
        # re-sent once the partition has a live home again.
        move_buffered: Dict[int, List[TypingTuple[int, Tuple]]] = {}
        for pid, move in list(self._moves.items()):
            if machine_id in (move.source, move.target):
                move_buffered[pid] = list(move.buffered)
                del self._moves[pid]

        promoted = 0
        restarted = 0
        replayed = 0
        for pid in range(self.n_partitions):
            lost_primary = self.primary[pid] == machine_id
            lost_replica = self.replica.get(pid) == machine_id
            # The dead machine will never acknowledge anything.
            orphans: List[TypingTuple[int, Tuple]] = []
            for seq, (t, pending) in list(self._unacked[pid].items()):
                if machine_id in pending:
                    pending.discard(machine_id)
                if not pending:
                    # Pending only on the dead machine -> lost in its
                    # queue; must be replayed to the new home.
                    orphans.append((seq, t))
                    del self._unacked[pid][seq]
            replay_orphans = False
            if lost_primary:
                mirror_id = self.replica.get(pid)
                if mirror_id and self.backend.is_alive(mirror_id):
                    # Process-pair failover: the replica already received
                    # (or applied) every orphan, so nothing replays.
                    self.primary[pid] = mirror_id
                    del self.replica[pid]
                    promoted += 1
                else:
                    new_home = min(alive,
                                   key=lambda mid: backlogs.get(mid, 0))
                    self.lost_tuples += \
                        self.backend.applied_count(machine_id, pid)
                    self.backend.create_partition(new_home, pid)
                    self.primary[pid] = new_home
                    restarted += 1
                    replay_orphans = True
            elif lost_replica:
                # The primary still holds everything; orphans (pending
                # only on the dead replica) are already applied upstream.
                del self.replica[pid]
            if replay_orphans:
                for seq, t in orphans:
                    self._send(pid, seq, t)
                    replayed += 1
                self.replayed_tuples += len(orphans)
            if (lost_primary or lost_replica) and self.replication:
                self._respawn_replica(pid)
            for seq, t in move_buffered.get(pid, ()):
                self._send(pid, seq, t)
                replayed += 1
        self.recovered_partitions += promoted + restarted
        self.recovery_times_ms.append((now() - started) * 1000.0)
        return {"promoted": promoted, "restarted": restarted,
                "replayed": replayed}

    def _respawn_replica(self, pid: int) -> None:
        """Re-establish the process pair: snapshot the primary's state
        onto a fresh mirror and forward the primary's queued work so the
        copies converge."""
        alive = self.backend.alive_ids()
        primary_id = self.primary[pid]
        options = [mid for mid in alive if mid != primary_id]
        if not options or pid in self.replica:
            return
        backlogs = self.backend.backlogs()
        mirror = min(options, key=lambda mid: backlogs.get(mid, 0))
        handoff = self.backend.snapshot_partition(primary_id, pid)
        if handoff is None:
            return
        # The snapshot barrier may have surfaced acknowledgements; fold
        # them into the ledger first so only genuinely-unapplied work is
        # forwarded (forwarding an already-snapshotted tuple would
        # double-apply it at the mirror).
        self._collect_acks(self.backend.poll_acks())
        self.backend.install_partition(mirror, pid, handoff)
        self.replica[pid] = mirror
        # Mirror must also see what the primary has queued but not yet
        # applied, and owes an ack for each.
        for seq, (t, pending) in self._unacked[pid].items():
            if primary_id not in pending:
                continue
            pending.add(mirror)
            self.backend.enqueue(mirror, pid, seq, t)

    # -- telemetry ----------------------------------------------------------
    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        flux = self._telemetry_id
        reg.counter("tcq_flux_routed_total",
                    "Tuples routed through Flux", ("flux",),
                    collected=True).labels(flux).set_total(self.routed)
        reg.counter("tcq_flux_moves_total",
                    "Completed partition movements", ("flux",),
                    collected=True).labels(flux).set_total(
            self.moves_completed)
        reg.counter("tcq_flux_state_moved_total",
                    "State entries shipped between machines", ("flux",),
                    collected=True).labels(flux).set_total(self.state_moved)
        reg.counter("tcq_flux_recovered_partitions_total",
                    "Partitions promoted or restarted after failures",
                    ("flux",), collected=True).labels(flux).set_total(
            self.recovered_partitions)
        reg.counter("tcq_flux_replayed_total",
                    "Tuples replayed during recovery", ("flux",),
                    collected=True).labels(flux).set_total(
            self.replayed_tuples)
        reg.counter("tcq_flux_lost_total",
                    "Tuples lost to unreplicated failures", ("flux",),
                    collected=True).labels(flux).set_total(self.lost_tuples)
        reg.gauge("tcq_flux_unacked",
                  "In-flight tuples awaiting acknowledgement", ("flux",),
                  collected=True).labels(flux).set(self.unacked_total())
        reg.gauge("tcq_flux_partition_skew",
                  "Cluster backlog imbalance (max/mean)", ("flux",),
                  collected=True).labels(flux).set(self.backend.imbalance())
        if self.recovery_times_ms:
            reg.gauge("tcq_flux_recovery_ms",
                      "Wall-clock duration of the last failover reaction",
                      ("flux",), collected=True).labels(flux).set(
                self.recovery_times_ms[-1])
        backlog = reg.gauge("tcq_flux_machine_backlog",
                            "Queued work per live machine",
                            ("flux", "machine"), collected=True)
        for mid, depth in self.backend.backlogs().items():
            backlog.labels(flux, mid).set(depth)

    # -- results ------------------------------------------------------------
    def _resolve_state_cls(self) -> type:
        if self._state_cls is None:
            self._state_cls = type(self.state_factory())
        return self._state_cls

    def partition_state(self, pid: int) -> Optional[PartitionState]:
        """The current primary state of ``pid`` — the live object on
        same-process backends, a snapshot reconstruction otherwise."""
        host = self.primary[pid]
        state = self.backend.peek_partition(host, pid)
        if state is not None:
            return state
        handoff = self.backend.snapshot_partition(host, pid)
        if handoff is None:
            return None
        if handoff.state is not None:
            return handoff.state
        return self._resolve_state_cls().from_snapshot(handoff.snapshot)

    def merged_counts(self) -> Dict[Any, int]:
        """Union the per-partition group counts from current primaries
        (meaningful for GroupCountState-style consumers)."""
        out: Dict[Any, int] = {}
        for pid in self.primary:
            state = self.partition_state(pid)
            if state is None:
                continue
            for key, count in getattr(state, "counts", {}).items():
                out[key] = out.get(key, 0) + count
        return out

    def unacked_total(self) -> int:
        return sum(len(v) for v in self._unacked.values())

    def drain(self, max_ticks: int = 100_000) -> int:
        """Run ticks with no new input until everything is acked.

        The drive loop is a throwaway unified-scheduler unit so Flux
        shares the one quiescence/stall protocol with every other run
        loop in the system.
        """
        if not self.unacked_total():
            return 0
        unit = FunctionUnit(
            f"{self._telemetry_id}:drain",
            step=lambda _quantum: bool(self.tick()),
            is_finished=lambda: not self.unacked_total())
        sched = Scheduler(policy="round_robin",
                          name=f"{self._telemetry_id}:drain",
                          telemetry=False)
        sched.add(unit)
        try:
            return sched.run_until_finished(max_passes=max_ticks)
        except SchedulerStall:
            raise ClusterError(
                "flux failed to drain in-flight tuples") from None


class FluxPump(Schedulable):
    """The conductor pump as a unified-scheduler unit.

    Wraps a :class:`Flux` (and optionally a feed of arriving batches)
    so the cluster data plane runs *beside* the engine, the network
    pump, and every other :class:`~repro.sched.Schedulable` under one
    scheduler — one ``run_once`` is one Flux epoch.  ``ready()`` is the
    cheap hint the pressure-aware policy needs: there is work whenever
    input remains or acknowledgements are outstanding.
    """

    def __init__(self, flux: Flux,
                 feed: Optional[Iterable[Sequence[Tuple]]] = None,
                 name: Optional[str] = None):
        self.flux = flux
        self._feed = iter(feed) if feed is not None else None
        self._feed_done = feed is None
        self.name = name or f"{flux._telemetry_id}:pump"
        self.epochs = 0

    @property
    def finished(self) -> bool:
        return self._feed_done and not self.flux.unacked_total()

    def ready(self) -> bool:
        return not self._feed_done or bool(self.flux.unacked_total())

    def run_once(self, quantum: Optional[int] = None) -> StepResult:
        batch: Optional[List[Tuple]] = None
        if not self._feed_done:
            try:
                batch = list(next(self._feed))
            except StopIteration:
                self._feed_done = True
        # wait=False: this quantum may run on the event-loop thread, so
        # an idle epoch yields to the scheduler instead of parking.
        acked = self.flux.tick(batch, wait=False)
        self.epochs += 1
        worked = bool(acked) or bool(batch)
        if self.finished:
            return StepResult(worked, finished=True)
        return StepResult.BUSY if worked else StepResult.IDLE
