"""flux subpackage of the TelegraphCQ reproduction.

The partitioned-parallel dataflow layer: the :class:`Flux` operator
(routing, online repartitioning, process-pair failover) programs
against the :class:`ClusterBackend` protocol, which is implemented by
the deterministic :class:`SimulatedBackend` (tier-1), the in-process
:class:`LoopbackBackend` (real worker logic and wire codec, zero
processes) and the :class:`MultiprocessBackend` (real spawned worker
interpreters connected by framed pipes).
"""

from repro.flux.backend import AckMap, ClusterBackend, PartitionHandoff, \
    SimulatedBackend, as_backend
from repro.flux.cluster import Cluster, GroupCountState, Machine, \
    PartitionState
from repro.flux.flux import Flux, FluxPump
from repro.flux.parallel_cacq import CACQPartitionState, ParallelCACQ
from repro.flux.procs import LoopbackBackend, MultiprocessBackend, \
    WorkerCore, live_worker_pids

__all__ = [
    "AckMap",
    "CACQPartitionState",
    "Cluster",
    "ClusterBackend",
    "Flux",
    "FluxPump",
    "GroupCountState",
    "LoopbackBackend",
    "Machine",
    "MultiprocessBackend",
    "ParallelCACQ",
    "PartitionHandoff",
    "PartitionState",
    "SimulatedBackend",
    "WorkerCore",
    "as_backend",
    "live_worker_pids",
]
