"""flux subpackage of the TelegraphCQ reproduction."""
