"""Abstract syntax for the TelegraphCQ query subset.

The parser produces a :class:`QuerySpec`; the optimizer lowers it onto
the adaptive machinery (CACQ registration, eddy plan, or windowed
runner).  Window-bound expressions are tiny arithmetic ASTs over the
loop variable and named constants (``ST``), compiled to closures by
:meth:`Expr.compile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple as TypingTuple

#: "No span" sentinel for nodes built programmatically rather than parsed.
NO_SPAN: TypingTuple[int, int] = (-1, -1)

from repro.errors import QueryError
from repro.query.predicates import Predicate


# -- arithmetic expressions (window bounds, loop headers) ---------------------

class Expr:
    """Integer arithmetic over the loop variable and named constants."""

    def compile(self) -> Callable[[Dict[str, int]], int]:
        raise NotImplementedError

    def variables(self) -> set:
        raise NotImplementedError


@dataclass(frozen=True)
class NumberExpr(Expr):
    value: float

    def compile(self) -> Callable[[Dict[str, int]], int]:
        v = self.value
        return lambda env: v

    def variables(self) -> set:
        return set()

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarExpr(Expr):
    name: str

    def compile(self) -> Callable[[Dict[str, int]], int]:
        name = self.name
        def lookup(env: Dict[str, int]) -> int:
            try:
                return env[name]
            except KeyError:
                raise QueryError(
                    f"unbound variable {name!r} in window expression; "
                    f"bind it when submitting the query") from None
        return lookup

    def variables(self) -> set:
        return {self.name}

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOpExpr(Expr):
    op: str
    left: Expr
    right: Expr

    _FNS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int)
        else a / b,
    }

    def compile(self) -> Callable[[Dict[str, int]], int]:
        fn = self._FNS[self.op]
        lhs = self.left.compile()
        rhs = self.right.compile()
        return lambda env: fn(lhs(env), rhs(env))

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# -- query structure ------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    """One output column: a plain column, ``*``, or an aggregate call."""

    column: Optional[str]          # None for '*'
    aggregate: Optional[str] = None
    alias: str = ""

    @property
    def is_star(self) -> bool:
        return self.column is None and self.aggregate is None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.aggregate:
            if self.column is None:
                return self.aggregate.lower()        # COUNT(*) -> "count"
            return f"{self.aggregate.lower()}_{self.column.replace('.', '_')}"
        return self.column or "*"

    def __repr__(self) -> str:
        if self.is_star:
            return "*"
        if self.aggregate:
            return f"{self.aggregate}({self.column or '*'})"
        return self.column or "*"


@dataclass(frozen=True)
class FromSource:
    """A stream/table reference with an optional alias (self-joins)."""

    name: str
    alias: str = ""
    #: Character span of the reference in the query text.
    span: TypingTuple[int, int] = field(default=NO_SPAN, compare=False,
                                        repr=False)

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class WindowClause:
    """One ``WindowIs(stream, left, right)`` statement."""

    stream: str
    left: Expr
    right: Expr
    #: Character span of the WindowIs statement in the query text.
    span: TypingTuple[int, int] = field(default=NO_SPAN, compare=False,
                                        repr=False)


@dataclass(frozen=True)
class ForLoopClause:
    """The parsed for-loop header + body."""

    variable: str
    initial: Expr
    #: condition: (left expr, comparison op, right expr)
    condition: TypingTuple[Expr, str, Expr]
    #: update: (op, operand expr) where op in {"+=", "-=", "="}
    update: TypingTuple[str, Expr]
    windows: TypingTuple[WindowClause, ...]
    #: Character span of the whole for-loop in the query text.
    span: TypingTuple[int, int] = field(default=NO_SPAN, compare=False,
                                        repr=False)


@dataclass(frozen=True)
class QuerySpec:
    """The full parsed query."""

    select_items: TypingTuple[SelectItem, ...]
    sources: TypingTuple[FromSource, ...]
    predicate: Predicate
    for_loop: Optional[ForLoopClause] = None
    distinct: bool = False
    group_by: TypingTuple[str, ...] = ()
    order_by: Optional[TypingTuple[str, bool]] = None   # (column, descending)
    text: str = ""

    @property
    def is_windowed(self) -> bool:
        return self.for_loop is not None

    @property
    def is_aggregate(self) -> bool:
        return any(item.aggregate for item in self.select_items)

    def bindings(self) -> List[str]:
        return [s.binding for s in self.sources]

    def __repr__(self) -> str:
        return f"QuerySpec({self.text.strip()[:60]}...)" if self.text else \
            f"QuerySpec(select={self.select_items}, from={self.sources})"
