"""Recursive-descent parser for the TelegraphCQ query subset.

Accepts every query in Section 4.1 of the paper verbatim, e.g.::

    SELECT closingPrice, timestamp
    FROM ClosingStockPrices
    WHERE stockSymbol = 'MSFT' and closingPrice > 50.00
    for (t = 101; t <= 1000; t++) {
        WindowIs(ClosingStockPrices, 101, t);
    }

The WHERE grammar produces :mod:`repro.query.predicates` objects
directly; comparisons between two column references become
:class:`ColumnComparison` (join factors), everything else becomes
:class:`Comparison` boolean factors.
"""

from __future__ import annotations

from typing import List, Optional, Tuple as TypingTuple

from repro.errors import ParseError
from repro.query.ast import (BinOpExpr, Expr, ForLoopClause, FromSource,
                             NumberExpr, QuerySpec, SelectItem, VarExpr,
                             WindowClause)
from repro.query.lexer import Token, tokenize
from repro.query.predicates import (ALWAYS_TRUE, And, ColumnComparison,
                                    Comparison, Not, Or, Predicate)

_AGGREGATES = {"count", "sum", "avg", "min", "max", "stddev"}
_COMPARE_OPS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


class Parser:
    """One-shot parser; use the module-level :func:`parse`."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ----------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def _next(self) -> Token:
        token = self._peek()
        self.pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._next()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word.upper()}, got {token.text!r}",
                             token.position, self.text)
        return token

    def _expect_op(self, op: str) -> Token:
        token = self._next()
        if not token.is_op(op):
            raise ParseError(f"expected {op!r}, got {token.text!r}",
                             token.position, self.text)
        return token

    def _expect_ident(self) -> Token:
        token = self._next()
        if token.kind != "ident":
            raise ParseError(f"expected identifier, got {token.text!r}",
                             token.position, self.text)
        return token

    def _prev_end(self) -> int:
        """End offset (exclusive) of the most recently consumed token;
        string literals account for their surrounding quotes."""
        token = self.tokens[max(0, self.pos - 1)]
        extra = 2 if token.kind == "string" else 0
        return token.position + len(token.text) + extra

    # -- grammar ------------------------------------------------------------
    def parse(self) -> QuerySpec:
        self._expect_keyword("select")
        distinct = False
        if self._peek().is_keyword("distinct"):
            self._next()
            distinct = True
        items = self._select_list()
        self._expect_keyword("from")
        sources = self._from_list()
        predicate: Predicate = ALWAYS_TRUE
        if self._peek().is_keyword("where"):
            self._next()
            predicate = self._or_expr()
        group_by: TypingTuple[str, ...] = ()
        if self._peek().is_keyword("group"):
            self._next()
            self._expect_keyword("by")
            group_by = tuple(self._column_list())
        order_by = None
        if self._peek().is_keyword("order"):
            self._next()
            self._expect_keyword("by")
            column = self._colref()
            descending = False
            if self._peek().is_keyword("desc"):
                self._next()
                descending = True
            elif self._peek().is_keyword("asc"):
                self._next()
            order_by = (column, descending)
        for_loop = None
        if self._peek().is_keyword("for"):
            for_loop = self._for_loop()
        if self._peek().is_op(";"):
            self._next()
        tail = self._peek()
        if tail.kind != "eof":
            raise ParseError(f"unexpected trailing input {tail.text!r}",
                             tail.position, self.text)
        return QuerySpec(tuple(items), tuple(sources), predicate,
                         for_loop=for_loop, distinct=distinct,
                         group_by=group_by, order_by=order_by,
                         text=self.text)

    def _select_list(self) -> List[SelectItem]:
        items = [self._select_item()]
        while self._peek().is_op(","):
            self._next()
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        token = self._peek()
        if token.is_op("*"):
            self._next()
            return SelectItem(None)
        if token.kind == "ident" and token.text.lower() in _AGGREGATES \
                and self._peek(1).is_op("("):
            agg = self._next().text.upper()
            self._expect_op("(")
            inner: Optional[str] = None
            if self._peek().is_op("*"):
                self._next()
            else:
                inner = self._colref()
            self._expect_op(")")
            alias = self._maybe_alias()
            return SelectItem(inner, aggregate=agg, alias=alias)
        column = self._colref()
        if self._peek().is_op("."):
            # ident '.' '*'  — the paper writes "Select c2.*".
            self._next()
            self._expect_op("*")
            return SelectItem(None, alias=column)
        alias = self._maybe_alias()
        return SelectItem(column, alias=alias)

    def _maybe_alias(self) -> str:
        if self._peek().is_keyword("as"):
            self._next()
            return self._expect_ident().text
        return ""

    def _colref(self) -> str:
        name = self._expect_ident().text
        if self._peek().is_op(".") and self._peek(1).kind == "ident":
            self._next()
            name = f"{name}.{self._expect_ident().text}"
        return name

    def _column_list(self) -> List[str]:
        cols = [self._colref()]
        while self._peek().is_op(","):
            self._next()
            cols.append(self._colref())
        return cols

    def _from_list(self) -> List[FromSource]:
        sources = [self._from_source()]
        while self._peek().is_op(","):
            self._next()
            sources.append(self._from_source())
        return sources

    def _from_source(self) -> FromSource:
        start = self._peek().position
        name = self._expect_ident().text
        alias = ""
        if self._peek().is_keyword("as"):
            self._next()
            alias = self._expect_ident().text
        elif self._peek().kind == "ident":
            alias = self._next().text
        return FromSource(name, alias, span=(start, self._prev_end()))

    # -- predicates --------------------------------------------------------
    def _or_expr(self) -> Predicate:
        left = self._and_expr()
        while self._peek().is_keyword("or"):
            self._next()
            left = Or(left, self._and_expr())
        return left

    def _and_expr(self) -> Predicate:
        left = self._not_expr()
        while self._peek().is_keyword("and"):
            self._next()
            left = And(left, self._not_expr())
        return left

    def _not_expr(self) -> Predicate:
        if self._peek().is_keyword("not"):
            self._next()
            return Not(self._not_expr())
        if self._peek().is_op("("):
            self._next()
            inner = self._or_expr()
            self._expect_op(")")
            return inner
        return self._comparison()

    def _comparison(self) -> Predicate:
        start = self._peek().position
        left_kind, left = self._operand()
        op_token = self._next()
        if op_token.kind != "op" or op_token.text not in _COMPARE_OPS:
            raise ParseError(
                f"expected comparison operator, got {op_token.text!r}",
                op_token.position, self.text)
        op = op_token.text
        right_kind, right = self._operand()
        span = (start, self._prev_end())
        if left_kind == "column" and right_kind == "column":
            return ColumnComparison(left, op, right, span=span)
        if left_kind == "column":
            return Comparison(left, op, right, span=span)
        if right_kind == "column":
            from repro.query.predicates import FLIPPED
            return Comparison(right, FLIPPED[op], left, span=span)
        raise ParseError("comparison between two literals",
                         op_token.position, self.text)

    def _operand(self) -> TypingTuple[str, object]:
        token = self._peek()
        if token.kind == "ident":
            return "column", self._colref()
        if token.kind == "number":
            self._next()
            text = token.text
            return "literal", (float(text) if "." in text else int(text))
        if token.kind == "string":
            self._next()
            return "literal", token.text
        if token.is_op("-") and self._peek(1).kind == "number":
            self._next()
            num = self._next()
            return "literal", -(float(num.text) if "." in num.text
                                else int(num.text))
        raise ParseError(f"expected column or literal, got {token.text!r}",
                         token.position, self.text)

    # -- the for-loop window clause ---------------------------------------------
    def _for_loop(self) -> ForLoopClause:
        start = self._peek().position
        self._expect_keyword("for")
        self._expect_op("(")
        variable = "t"
        initial: Expr = NumberExpr(0)
        if not self._peek().is_op(";"):
            variable = self._expect_ident().text
            self._expect_op("=")
            initial = self._expr()
        self._expect_op(";")
        cond_left = self._expr()
        cmp_token = self._next()
        if cmp_token.kind != "op" or cmp_token.text not in _COMPARE_OPS:
            raise ParseError(
                f"expected loop condition comparison, got {cmp_token.text!r}",
                cmp_token.position, self.text)
        cond_right = self._expr()
        self._expect_op(";")
        update = self._loop_update(variable)
        self._expect_op(")")
        self._expect_op("{")
        windows: List[WindowClause] = []
        while self._peek().is_keyword("windowis"):
            windows.append(self._window_is())
        self._expect_op("}")
        if not windows:
            raise ParseError("for-loop needs at least one WindowIs",
                             self._peek().position, self.text)
        return ForLoopClause(variable, initial,
                             (cond_left, cmp_token.text, cond_right),
                             update, tuple(windows),
                             span=(start, self._prev_end()))

    def _loop_update(self, variable: str) -> TypingTuple[str, Expr]:
        name = self._expect_ident().text
        if name != variable:
            raise ParseError(
                f"loop update must assign {variable!r}, got {name!r}",
                self._peek().position, self.text)
        token = self._next()
        if token.is_op("++"):
            return ("+=", NumberExpr(1))
        if token.is_op("--"):
            return ("-=", NumberExpr(1))
        if token.is_op("+="):
            return ("+=", self._expr())
        if token.is_op("-="):
            return ("-=", self._expr())
        if token.is_op("="):
            return ("=", self._expr())
        raise ParseError(f"bad loop update operator {token.text!r}",
                         token.position, self.text)

    def _window_is(self) -> WindowClause:
        start = self._peek().position
        self._expect_keyword("windowis")
        self._expect_op("(")
        stream = self._expect_ident().text
        self._expect_op(",")
        left = self._expr()
        self._expect_op(",")
        right = self._expr()
        self._expect_op(")")
        self._expect_op(";")
        return WindowClause(stream, left, right,
                            span=(start, self._prev_end()))

    # -- arithmetic expressions -------------------------------------------------
    def _expr(self) -> Expr:
        left = self._term()
        while self._peek().is_op("+") or self._peek().is_op("-"):
            op = self._next().text
            left = BinOpExpr(op, left, self._term())
        return left

    def _term(self) -> Expr:
        left = self._factor()
        while self._peek().is_op("*") or self._peek().is_op("/"):
            op = self._next().text
            left = BinOpExpr(op, left, self._factor())
        return left

    def _factor(self) -> Expr:
        token = self._peek()
        if token.kind == "number":
            self._next()
            text = token.text
            return NumberExpr(float(text) if "." in text else int(text))
        if token.kind == "ident":
            self._next()
            return VarExpr(token.text)
        if token.is_op("-"):
            self._next()
            inner = self._factor()
            if isinstance(inner, NumberExpr):
                return NumberExpr(-inner.value)
            return BinOpExpr("-", NumberExpr(0), inner)
        if token.is_op("("):
            self._next()
            inner = self._expr()
            self._expect_op(")")
            return inner
        raise ParseError(f"bad expression token {token.text!r}",
                         token.position, self.text)


def parse(text: str) -> QuerySpec:
    """Parse a TelegraphCQ query string into a :class:`QuerySpec`."""
    return Parser(text).parse()


def parse_predicate(text: str) -> Predicate:
    """Parse a bare boolean expression (``price > 10 and sym = 'A'``)
    into a :class:`Predicate` — used by the dataflow scripting language
    and handy for building engines programmatically."""
    parser = Parser(text)
    predicate = parser._or_expr()
    tail = parser._peek()
    if tail.kind != "eof":
        raise ParseError(f"unexpected trailing input {tail.text!r}",
                         tail.position, text)
    return predicate
