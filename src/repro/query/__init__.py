"""query subpackage of the TelegraphCQ reproduction."""
