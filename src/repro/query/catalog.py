"""The system catalog: streams, tables, and their schemas (Figure 4/5).

TelegraphCQ reuses PostgreSQL's catalog; ours is an in-memory registry
with the two object kinds the paper distinguishes:

* **streams** — unbounded, windowed access only for blocking ops;
* **tables** — static relations ("an input without a corresponding
  WindowIs statement is assumed to be a static table by default").

The catalog also resolves unqualified column names to their owning
source within a query's FROM list, and materialises alias bindings for
self-joins.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple as TypingTuple

from repro.core.tuples import Schema, Tuple
from repro.errors import QueryError


class CatalogEntry:
    __slots__ = ("name", "schema", "kind")

    def __init__(self, name: str, schema: Schema, kind: str):
        self.name = name
        self.schema = schema
        self.kind = kind

    @property
    def is_stream(self) -> bool:
        return self.kind == "stream"


class Catalog:
    """Registry of every queryable object."""

    def __init__(self) -> None:
        self._entries: Dict[str, CatalogEntry] = {}

    def create_stream(self, schema: Schema) -> CatalogEntry:
        return self._create(schema, "stream")

    def create_table(self, schema: Schema) -> CatalogEntry:
        return self._create(schema, "table")

    def _create(self, schema: Schema, kind: str) -> CatalogEntry:
        if not schema.name:
            raise QueryError(f"a {kind} schema needs a name")
        if schema.name in self._entries:
            raise QueryError(f"{schema.name!r} already exists")
        entry = CatalogEntry(schema.name, schema, kind)
        self._entries[schema.name] = entry
        return entry

    def drop(self, name: str) -> None:
        if name not in self._entries:
            raise QueryError(f"unknown object {name!r}")
        del self._entries[name]

    def lookup(self, name: str) -> CatalogEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise QueryError(
                f"unknown stream or table {name!r}; known: "
                f"{sorted(self._entries)}")
        return entry

    def exists(self, name: str) -> bool:
        return name in self._entries

    def streams(self) -> List[str]:
        return [e.name for e in self._entries.values() if e.is_stream]

    def tables(self) -> List[str]:
        return [e.name for e in self._entries.values() if not e.is_stream]

    def alias_schema(self, name: str, alias: str) -> Schema:
        """The schema of ``name`` re-labelled under ``alias`` — tuples of
        a self-joined stream are replicated under each alias binding."""
        base = self.lookup(name).schema
        return Schema(base.columns, name=alias)

    def resolve_column(self, column: str,
                       bindings: Sequence[TypingTuple[str, str]]) -> str:
        """Resolve a possibly-unqualified column against FROM bindings.

        ``bindings`` is a list of (binding name, underlying object name);
        returns the qualified ``binding.column`` form, raising on
        ambiguity — "In the face of ambiguity, refuse the temptation to
        guess."
        """
        if "." in column:
            prefix = column.split(".", 1)[0]
            if not any(b == prefix for b, _o in bindings):
                raise QueryError(
                    f"column {column!r} references unknown binding "
                    f"{prefix!r}")
            return column
        owners = []
        for binding, obj in bindings:
            schema = self.lookup(obj).schema
            if schema.has_column(column):
                owners.append(binding)
        if not owners:
            raise QueryError(f"unknown column {column!r}")
        if len(owners) > 1:
            raise QueryError(
                f"column {column!r} is ambiguous across {owners}; "
                f"qualify it")
        return f"{owners[0]}.{column}"
