"""The optimizer: lowers a parsed :class:`QuerySpec` onto the engine.

TelegraphCQ reuses PostgreSQL's parser/optimizer front end but emits
*adaptive* plans (Section 4.2.1).  This optimizer classifies each query
and produces the matching plan object:

* **snapshot**   — FROM static tables, no for-loop: executed once with
  the classic iterator machinery (the Figure 4 code path);
* **continuous** — over streams, no for-loop: registered with the shared
  CACQ engine (selection and join CQs);
* **windowed**   — a for-loop present: compiled to a
  :class:`~repro.core.windows.ForLoopSpec` plus a per-window evaluation
  pipeline (filters → join → aggregate/distinct/sort → project).

Column references are qualified against the FROM bindings here, so the
runtime never guesses; self-join aliases get their own logical sources.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple as TypingTuple

from repro.core.aggregates import make_aggregate
from repro.core.tuples import Column, Schema, Tuple
from repro.core.windows import ForLoopSpec, WindowIs
from repro.errors import QueryError
from repro.query.ast import ForLoopClause, QuerySpec
from repro.query.catalog import Catalog
from repro.query.predicates import (ALWAYS_TRUE, Predicate, decompose, rewrite_columns)

#: Comparison functions for loop conditions.
_CONDITIONS: Dict[str, Callable[[int, int], bool]] = {
    "==": lambda a, b: a == b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class CompiledQuery:
    """The optimizer's output: what kind of plan, and its pieces."""

    def __init__(self, spec: QuerySpec, kind: str,
                 bindings: Sequence[TypingTuple[str, str]],
                 predicate: Predicate):
        self.spec = spec
        self.kind = kind                       # snapshot|continuous|windowed
        self.bindings = list(bindings)         # (binding, object) pairs
        self.predicate = predicate             # fully qualified
        self.window_plan: Optional["WindowedPlan"] = None

    @property
    def footprint(self) -> frozenset:
        return frozenset(b for b, _o in self.bindings)

    def __repr__(self) -> str:
        return f"CompiledQuery({self.kind}, over={self.footprint})"


class WindowedPlan:
    """A for-loop query lowered to spec-builder + per-window pipeline.

    ``build_spec(env)`` late-binds free variables like ``ST`` (the
    query's submission time); ``evaluate(window_data)`` runs the body
    over one window's tuples per binding.
    """

    def __init__(self, compiled: CompiledQuery, clause: ForLoopClause,
                 catalog: Catalog):
        self.compiled = compiled
        self.clause = clause
        self.catalog = catalog
        spec = compiled.spec
        decomposed = decompose(compiled.predicate)
        bindings = compiled.bindings
        binding_names = [b for b, _o in bindings]
        windowed_bindings = set()
        for w in clause.windows:
            if w.stream not in binding_names:
                raise QueryError(
                    f"WindowIs names {w.stream!r}, which is not in FROM "
                    f"{binding_names}")
            windowed_bindings.add(w.stream)
        #: bindings with no WindowIs: "assumed to be a static table by
        #: default" (Section 4.1.1) — the whole table joins each window.
        self.static_bindings = []
        for binding, obj in bindings:
            if binding in windowed_bindings:
                continue
            if catalog.lookup(obj).is_stream:
                raise QueryError(
                    f"stream {obj!r} (as {binding!r}) appears in a "
                    f"windowed query without a WindowIs; unbounded "
                    f"inputs need windows")
            self.static_bindings.append(binding)
        #: per-binding single-variable factors, pre-split.
        self.local_filters: Dict[str, List] = {b: [] for b in binding_names}
        for factor in decomposed.single_variable:
            owner = factor.column.split(".", 1)[0]
            self.local_filters.setdefault(owner, []).append(factor)
        self.join_factors = decomposed.equijoins
        self.residual = decomposed.residual_predicate()
        self.select_items = spec.select_items
        self.distinct = spec.distinct
        self.group_by = tuple(
            self._qualify(col) for col in spec.group_by)
        self.order_by = None
        if spec.order_by is not None:
            self.order_by = (self._qualify(spec.order_by[0]),
                             spec.order_by[1])
        self._out_schema: Optional[Schema] = None

    def _qualify(self, column: str) -> str:
        return self.catalog.resolve_column(
            column, [(b, o) for b, o in self.compiled.bindings])

    # -- window sequence -------------------------------------------------------
    def build_spec(self, env: Optional[Dict[str, int]] = None,
                   max_iterations: int = 100_000) -> ForLoopSpec:
        """Instantiate the ForLoopSpec with ``env`` binding free
        variables (``ST`` etc.)."""
        base_env = dict(env or {})
        clause = self.clause
        var = clause.variable
        init_fn = clause.initial.compile()
        cond_left, cond_op, cond_right = clause.condition
        left_fn = cond_left.compile()
        right_fn = cond_right.compile()
        cmp_fn = _CONDITIONS[cond_op]
        update_op, update_expr = clause.update
        update_fn = update_expr.compile()

        free = (clause.initial.variables()
                | cond_left.variables() | cond_right.variables()
                | update_expr.variables()) - {var}
        missing = free - set(base_env)
        if missing:
            raise QueryError(
                f"window clause has unbound variables {sorted(missing)}; "
                f"pass them in env (ST is bound by the engine at submit)")

        def env_at(t: int) -> Dict[str, int]:
            e = dict(base_env)
            e[var] = t
            return e

        def condition(t: int) -> bool:
            e = env_at(t)
            return cmp_fn(left_fn(e), right_fn(e))

        def change(t: int) -> int:
            e = env_at(t)
            delta = update_fn(e)
            if update_op == "+=":
                return t + delta
            if update_op == "-=":
                return t - delta
            return delta            # plain assignment

        windows = []
        for w in self.clause.windows:
            lf = w.left.compile()
            rf = w.right.compile()
            windows.append(WindowIs(
                w.stream,
                lambda t, _lf=lf: _lf(env_at(t)),
                lambda t, _rf=rf: _rf(env_at(t))))
        return ForLoopSpec(init_fn(base_env), condition, change, windows,
                           max_iterations=max_iterations)

    # -- per-window evaluation ----------------------------------------------------
    def evaluate(self, window_data: Dict[str, List[Tuple]]) -> List[Tuple]:
        """filters -> join -> residual -> aggregate/distinct/sort ->
        project, over one window."""
        bindings = [b for b, _o in self.compiled.bindings]
        filtered: Dict[str, List[Tuple]] = {}
        for b in bindings:
            rows = window_data.get(b, [])
            for factor in self.local_filters.get(b, ()):
                rows = [t for t in rows if factor.matches(t)]
            filtered[b] = rows
        rows = self._join(bindings, filtered)
        if self.residual is not ALWAYS_TRUE:
            rows = [t for t in rows if self.residual.matches(t)]
        if any(item.aggregate for item in self.select_items):
            rows = self._aggregate(rows)
        else:
            rows = self._project(rows)
        if self.distinct:
            seen = set()
            unique = []
            for t in rows:
                if t.values not in seen:
                    seen.add(t.values)
                    unique.append(t)
            rows = unique
        if self.order_by is not None:
            column, descending = self.order_by
            key_col = column if rows and rows[0].schema.has_column(column) \
                else column.split(".", 1)[-1]
            rows = sorted(rows, key=lambda t: t[key_col],
                          reverse=descending)
        return rows

    def _join(self, bindings: List[str],
              filtered: Dict[str, List[Tuple]]) -> List[Tuple]:
        if len(bindings) == 1:
            return list(filtered[bindings[0]])
        rows = list(filtered[bindings[0]])
        joined_sources = {bindings[0]}
        for b in bindings[1:]:
            factors = [f for f in self.join_factors
                       if f.sources() <= (joined_sources | {b})
                       and b in f.sources()]
            next_rows: List[Tuple] = []
            if factors and len(filtered[b]) > 4:
                # hash join on the first equijoin factor
                factor = factors[0]
                b_col = factor.left if factor.left.startswith(b + ".") \
                    else factor.right
                o_col = factor.right if b_col == factor.left else factor.left
                table: Dict[Any, List[Tuple]] = {}
                for t in filtered[b]:
                    table.setdefault(t[b_col], []).append(t)
                rest = factors[1:]
                for left in rows:
                    for right in table.get(left[o_col], ()):
                        joined = left.concat(right)
                        if all(f.matches(joined) for f in rest):
                            next_rows.append(joined)
            else:
                for left in rows:
                    for right in filtered[b]:
                        joined = left.concat(right)
                        if all(f.matches(joined) for f in factors):
                            next_rows.append(joined)
            rows = next_rows
            joined_sources.add(b)
        return rows

    def _project(self, rows: List[Tuple]) -> List[Tuple]:
        if not rows:
            return rows
        if len(self.select_items) == 1 and self.select_items[0].is_star \
                and not self.select_items[0].alias:
            return rows
        sample = rows[0]
        columns: List[TypingTuple[str, str]] = []   # (out name, in column)
        for item in self.select_items:
            if item.is_star and item.alias:
                # "c2.*": every column of that binding.
                prefix = item.alias + "."
                for col in sample.schema.column_names():
                    if col.startswith(prefix) or (
                            len(self.compiled.bindings) == 1):
                        columns.append((col, col))
                continue
            if item.is_star:
                for col in sample.schema.column_names():
                    columns.append((col, col))
                continue
            qualified = self._qualify(item.column)
            in_col = qualified if sample.schema.has_column(qualified) \
                else item.column
            columns.append((item.output_name(), in_col))
        schema = Schema([Column(name) for name, _src in columns],
                        sources=sample.schema.sources)
        out = []
        for t in rows:
            out.append(Tuple(schema, tuple(t[src] for _n, src in columns),
                             timestamp=t.timestamp))
        return out

    def _aggregate(self, rows: List[Tuple]) -> List[Tuple]:
        aggs = [item for item in self.select_items if item.aggregate]
        plain = [item for item in self.select_items if not item.aggregate
                 and not item.is_star]
        group_cols = self.group_by or tuple(
            self._qualify(item.column) for item in plain)
        groups: Dict[TypingTuple[Any, ...], List] = {}
        order: List[TypingTuple[Any, ...]] = []
        for t in rows:
            key = tuple(t[c] for c in group_cols)
            state = groups.get(key)
            if state is None:
                state = [make_aggregate(item.aggregate) for item in aggs]
                groups[key] = state
                order.append(key)
            for item, agg in zip(aggs, state):
                if item.column is None:
                    agg.add(1)
                else:
                    agg.add(t[self._qualify(item.column)])
        names = [c.split(".", 1)[-1] for c in group_cols] + \
            [item.output_name() for item in aggs]
        schema = Schema([Column(n) for n in names], sources={"agg"})
        out: List[Tuple] = []
        if not rows and not group_cols:
            # Aggregate of an empty window is a single all-None row
            # (COUNT handles this as 0 via a fresh aggregate).
            state = [make_aggregate(item.aggregate) for item in aggs]
            return [Tuple(schema, tuple(a.result() for a in state))]
        for key in order:
            values = key + tuple(a.result() for a in groups[key])
            out.append(Tuple(schema, values))
        return out


def compile_query(spec: QuerySpec, catalog: Catalog) -> CompiledQuery:
    """Classify and lower one parsed query."""
    bindings: List[TypingTuple[str, str]] = []
    seen = set()
    for source in spec.sources:
        catalog.lookup(source.name)          # existence check
        binding = source.binding
        if binding in seen:
            raise QueryError(
                f"duplicate FROM binding {binding!r}; alias self-joins")
        seen.add(binding)
        bindings.append((binding, source.name))

    def resolve(column: str) -> str:
        return catalog.resolve_column(column, bindings)

    predicate = rewrite_columns(spec.predicate, resolve)

    any_stream = any(catalog.lookup(obj).is_stream for _b, obj in bindings)
    if spec.for_loop is not None:
        compiled = CompiledQuery(spec, "windowed", bindings, predicate)
        compiled.window_plan = WindowedPlan(compiled, spec.for_loop, catalog)
        return compiled
    if any_stream:
        if spec.is_aggregate:
            raise QueryError(
                "aggregates over unbounded streams need a for-loop window "
                "(Section 4.1: blocking operators run over windows)")
        return CompiledQuery(spec, "continuous", bindings, predicate)
    return CompiledQuery(spec, "snapshot", bindings, predicate)
