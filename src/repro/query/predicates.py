"""Predicates: boolean factors over tuples.

CACQ (Section 3.1) decomposes each query's WHERE clause into *boolean
factors*.  Single-variable factors (``price > 50``) go into grouped
filters; multi-variable factors (``s.sym == t.sym``) become SteM probe
predicates.  This module provides the predicate algebra, comparison
operators, and the decomposition.
"""

from __future__ import annotations

import operator
from typing import (Any, Callable, Dict, FrozenSet, List, Optional, Sequence,
                    Set, Tuple as TypingTuple, TYPE_CHECKING)

from repro.core import columnar
from repro.core.tuples import Tuple
from repro.errors import QueryError
from repro.monitor import telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tuples import TupleBatch

#: A compiled predicate kernel: batch in, selection vector out.  The
#: vector is a python bool list (fallback path) or a numpy bool array
#: (ufunc path); consumers go through ``repro.core.columnar`` mask
#: helpers, which accept either.
Kernel = Callable[["TupleBatch"], Any]


class _KernelTotals:
    """Process-wide kernel counters (the fjords TOTALS pattern): the
    per-batch path bumps plain integers; a global collector publishes
    them only when a telemetry snapshot is taken."""

    __slots__ = ("evals", "rows")

    def __init__(self) -> None:
        self.evals = 0
        self.rows = 0


KERNEL_TOTALS = _KernelTotals()


def _collect_kernel_telemetry(reg: "telemetry.MetricRegistry") -> None:
    reg.counter("tcq_predicate_kernel_evals_total",
                "Compiled predicate kernel invocations (one per batch)"
                ).set_total(KERNEL_TOTALS.evals)
    reg.counter("tcq_predicate_kernel_rows_total",
                "Rows evaluated through compiled predicate kernels"
                ).set_total(KERNEL_TOTALS.rows)


telemetry.register_global_collector(_collect_kernel_telemetry)

#: Comparison operator symbols to functions.
OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "=": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: The flipped operator for each comparison (used when normalising
#: ``value op column`` to ``column op' value``).
FLIPPED: Dict[str, str] = {
    "==": "==", "=": "=", "!=": "!=", "<>": "<>",
    "<": ">", "<=": ">=", ">": "<", ">=": "<=",
}

#: Logical negation of each operator (used by NOT push-down).
NEGATED: Dict[str, str] = {
    "==": "!=", "=": "!=", "!=": "==", "<>": "==",
    "<": ">=", "<=": ">", ">": "<=", ">=": "<",
}


class Predicate:
    """Base class.  Predicates are immutable and hashable so grouped
    filters and the optimizer can dedupe them."""

    def matches(self, t: Tuple) -> bool:
        raise NotImplementedError

    def columns(self) -> Set[str]:
        """Every column name this predicate reads."""
        raise NotImplementedError

    def sources(self) -> FrozenSet[str]:
        """Base streams referenced via qualified names (``S.price``);
        unqualified columns contribute nothing."""
        return frozenset(
            c.rsplit(".", 1)[0] for c in self.columns() if "." in c)

    def conjuncts(self) -> List["Predicate"]:
        """Flatten a conjunction into boolean factors; non-AND predicates
        return themselves."""
        return [self]

    def compile(self) -> Kernel:
        """Compile into a batch kernel: ``kernel(batch) -> selection
        vector`` with semantics identical to calling :meth:`matches` on
        every row.  The kernel resolves column positions once per batch
        and scans plain value lists, which is where the vectorized
        execution path gets its speedup."""
        inner = self._compile_kernel()
        totals = KERNEL_TOTALS

        def kernel(batch: "TupleBatch") -> List[bool]:
            totals.evals += 1
            totals.rows += len(batch)
            return inner(batch)

        return kernel

    def _compile_kernel(self) -> Kernel:
        # Fallback for predicate types without a columnar kernel: row
        # loop over materialized tuples (still one call per batch).
        matches = self.matches

        def kernel(batch: "TupleBatch") -> List[bool]:
            return [matches(t)
                    for t in batch.materialize()]  # tcqcheck: allow-row-iteration

        return kernel

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class TruePredicate(Predicate):
    """Always matches; the empty WHERE clause."""

    def matches(self, t: Tuple) -> bool:
        return True

    def columns(self) -> Set[str]:
        return set()

    def conjuncts(self) -> List[Predicate]:
        return []

    def _compile_kernel(self) -> Kernel:
        return lambda batch: [True] * len(batch)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("TruePredicate")

    def __repr__(self) -> str:
        return "TRUE"


ALWAYS_TRUE = TruePredicate()


class Comparison(Predicate):
    """A single-variable boolean factor: ``column op constant``.

    These are the predicates grouped filters index (Section 3.1).
    """

    __slots__ = ("column", "op", "value", "_fn", "span")

    def __init__(self, column: str, op: str, value: Any,
                 span: Optional[TypingTuple[int, int]] = None):
        if op not in OPS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.column = column
        self.op = "==" if op == "=" else ("!=" if op == "<>" else op)
        self.value = value
        #: Character span back into the query text this factor was parsed
        #: from (None when built programmatically); excluded from eq/hash
        #: so grouped filters still dedupe identical factors.
        self.span = span
        # Operator function resolved exactly once (from the normalised
        # symbol); every evaluation path — matches, evaluate, and the
        # compiled batch kernel — dispatches through this bound callable.
        self._fn = OPS[self.op]

    def matches(self, t: Tuple) -> bool:
        actual = t.get(self.column, _MISSING)
        if actual is _MISSING or actual is None:
            return False
        try:
            return self._fn(actual, self.value)
        except TypeError:
            return False

    def evaluate(self, value: Any) -> bool:
        """Apply the comparison to a raw value (grouped-filter probes)."""
        try:
            return self._fn(value, self.value)
        except TypeError:
            return False

    def _compile_kernel(self) -> Kernel:
        fn = self._fn
        value = self.value
        column = self.column

        def kernel(batch: "TupleBatch") -> Any:
            schema = batch.schema
            if not schema.has_column(column):
                return [False] * len(batch)
            idx = schema.index_of(column)
            arr = batch.store.array(idx)
            if arr is not None:
                # ufunc fast path: promoted columns hold no None, so the
                # null guard of the list path is vacuous here.
                mask = columnar.compare_array(fn, arr, value)
                if mask is not None:
                    return mask
            col = batch.store.values(idx)
            try:
                return [v is not None and fn(v, value) for v in col]
            except TypeError:
                # Heterogeneous column: fall back to per-element guards
                # so one incomparable value doesn't fail the whole batch.
                out: List[bool] = []
                for v in col:
                    try:
                        out.append(v is not None and bool(fn(v, value)))
                    except TypeError:
                        out.append(False)
                return out

        return kernel

    def columns(self) -> Set[str]:
        return {self.column}

    def negate(self) -> "Comparison":
        return Comparison(self.column, NEGATED[self.op], self.value,
                          span=self.span)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Comparison):
            return NotImplemented
        return (self.column, self.op, self.value) == \
            (other.column, other.op, other.value)

    def __hash__(self) -> int:
        return hash((self.column, self.op, self.value))

    def __repr__(self) -> str:
        return f"({self.column} {self.op} {self.value!r})"


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


class ColumnComparison(Predicate):
    """A multi-variable boolean factor: ``left_column op right_column``.

    Equality column comparisons spanning two sources are join predicates
    and get compiled into SteM probes; inequality ones (band joins,
    ``c2.closingPrice > c1.closingPrice``) are evaluated as post-join
    filters.
    """

    __slots__ = ("left", "op", "right", "_fn", "span")

    def __init__(self, left: str, op: str, right: str,
                 span: Optional[TypingTuple[int, int]] = None):
        if op not in OPS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.left = left
        self.op = "==" if op == "=" else ("!=" if op == "<>" else op)
        self.right = right
        self.span = span
        self._fn = OPS[op]

    def matches(self, t: Tuple) -> bool:
        lhs = t.get(self.left, _MISSING)
        rhs = t.get(self.right, _MISSING)
        if lhs is _MISSING or rhs is _MISSING:
            return False
        try:
            return self._fn(lhs, rhs)
        except TypeError:
            return False

    def is_equijoin(self) -> bool:
        return self.op == "==" and len(self.sources()) == 2

    def _compile_kernel(self) -> Kernel:
        fn = self._fn
        left = self.left
        right = self.right

        def kernel(batch: "TupleBatch") -> Any:
            schema = batch.schema
            if not (schema.has_column(left) and schema.has_column(right)):
                return [False] * len(batch)
            lidx = schema.index_of(left)
            ridx = schema.index_of(right)
            larr = batch.store.array(lidx)
            rarr = batch.store.array(ridx) if larr is not None else None
            if larr is not None and rarr is not None:
                mask = columnar.compare_array(fn, larr, rarr)
                if mask is not None:
                    return mask
            lcol = batch.store.values(lidx)
            rcol = batch.store.values(ridx)
            try:
                return [fn(l, r) for l, r in zip(lcol, rcol)]
            except TypeError:
                out: List[bool] = []
                for l, r in zip(lcol, rcol):
                    try:
                        out.append(bool(fn(l, r)))
                    except TypeError:
                        out.append(False)
                return out

        return kernel

    def columns(self) -> Set[str]:
        return {self.left, self.right}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnComparison):
            return NotImplemented
        return (self.left, self.op, self.right) == \
            (other.left, other.op, other.right)

    def __hash__(self) -> int:
        return hash((self.left, self.op, self.right))

    def __repr__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class And(Predicate):
    """Conjunction; flattens nested ANDs into boolean factors."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate):
        flat: List[Predicate] = []
        for p in parts:
            if isinstance(p, And):
                flat.extend(p.parts)
            elif isinstance(p, TruePredicate):
                continue
            else:
                flat.append(p)
        self.parts = tuple(flat)

    def matches(self, t: Tuple) -> bool:
        return all(p.matches(t) for p in self.parts)

    def columns(self) -> Set[str]:
        out: Set[str] = set()
        for p in self.parts:
            out |= p.columns()
        return out

    def conjuncts(self) -> List[Predicate]:
        out: List[Predicate] = []
        for p in self.parts:
            out.extend(p.conjuncts())
        return out

    def _compile_kernel(self) -> Kernel:
        kernels = [p._compile_kernel() for p in self.parts]

        def kernel(batch: "TupleBatch") -> Any:
            if not kernels:
                return [True] * len(batch)
            mask = kernels[0](batch)
            for k in kernels[1:]:
                mask = columnar.mask_and(mask, k(batch))
            return mask

        return kernel

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, And):
            return NotImplemented
        return self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("And", self.parts))

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    """Disjunction.  Kept whole (not decomposed into factors); CACQ treats
    a disjunctive factor as opaque and evaluates it directly."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate):
        flat: List[Predicate] = []
        for p in parts:
            if isinstance(p, Or):
                flat.extend(p.parts)
            else:
                flat.append(p)
        self.parts = tuple(flat)

    def matches(self, t: Tuple) -> bool:
        return any(p.matches(t) for p in self.parts)

    def columns(self) -> Set[str]:
        out: Set[str] = set()
        for p in self.parts:
            out |= p.columns()
        return out

    def _compile_kernel(self) -> Kernel:
        kernels = [p._compile_kernel() for p in self.parts]

        def kernel(batch: "TupleBatch") -> Any:
            if not kernels:
                return [False] * len(batch)
            mask = kernels[0](batch)
            for k in kernels[1:]:
                mask = columnar.mask_or(mask, k(batch))
            return mask

        return kernel

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Or):
            return NotImplemented
        return self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("Or", self.parts))

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    """Negation; ``Not(Comparison)`` normalises to the flipped operator."""

    __slots__ = ("part",)

    def __new__(cls, part: Predicate):
        if isinstance(part, Comparison):
            return part.negate()
        if isinstance(part, Not):
            return part.part
        return super().__new__(cls)

    def __init__(self, part: Predicate):
        if isinstance(part, (Comparison,)):
            return  # __new__ already returned the normalised form
        self.part = part

    def matches(self, t: Tuple) -> bool:
        return not self.part.matches(t)

    def _compile_kernel(self) -> Kernel:
        inner = self.part._compile_kernel()

        def kernel(batch: "TupleBatch") -> Any:
            return columnar.mask_invert(inner(batch))

        return kernel

    def columns(self) -> Set[str]:
        return self.part.columns()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Not):
            return NotImplemented
        return self.part == other.part

    def __hash__(self) -> int:
        return hash(("Not", self.part))

    def __repr__(self) -> str:
        return f"NOT {self.part!r}"


class FusedChain:
    """A filter *chain* compiled into one fused kernel.

    When the plan freezer pins a stable route, consecutive filters
    collapse into a single pass: every stage's mask is computed over the
    full batch width and combined into one selection vector, so the
    batch is partitioned exactly once instead of once per filter.

    Calling returns ``(alive, masks)``: the combined vector plus the
    per-stage full-width masks.  The caller recovers exact per-operator
    ``seen``/``passed`` counts by restricting stage *i*'s mask to the
    rows still alive after stages ``0..i-1`` — keeping data-plane
    counter parity with the unfused adaptive path.
    """

    __slots__ = ("predicates", "kernels")

    def __init__(self, predicates: Sequence[Predicate]):
        self.predicates = tuple(predicates)
        self.kernels = [p._compile_kernel() for p in self.predicates]

    def __len__(self) -> int:
        return len(self.kernels)

    def __call__(self, batch: "TupleBatch") -> "TypingTuple[Any, List[Any]]":
        n = len(batch)
        totals = KERNEL_TOTALS
        totals.evals += len(self.kernels)
        totals.rows += n * len(self.kernels)
        masks = [k(batch) for k in self.kernels]
        if not masks:
            return [True] * n, masks
        alive = masks[0]
        for m in masks[1:]:
            alive = columnar.mask_and(alive, m)
        return alive, masks


def compile_fused(predicates: Sequence[Predicate]) -> FusedChain:
    """Fuse an ordered predicate chain into a single batch kernel."""
    return FusedChain(predicates)


def rewrite_columns(predicate: Predicate, resolve) -> Predicate:
    """Rebuild a predicate with every column name mapped through
    ``resolve`` (used to qualify parsed predicates against a FROM list).
    """
    if isinstance(predicate, Comparison):
        return Comparison(resolve(predicate.column), predicate.op,
                          predicate.value, span=predicate.span)
    if isinstance(predicate, ColumnComparison):
        return ColumnComparison(resolve(predicate.left), predicate.op,
                                resolve(predicate.right),
                                span=predicate.span)
    if isinstance(predicate, And):
        return And(*(rewrite_columns(p, resolve) for p in predicate.parts))
    if isinstance(predicate, Or):
        return Or(*(rewrite_columns(p, resolve) for p in predicate.parts))
    if isinstance(predicate, Not):
        return Not(rewrite_columns(predicate.part, resolve))
    if isinstance(predicate, TruePredicate):
        return predicate
    raise QueryError(f"cannot rewrite predicate of type {type(predicate)}")


def decompose(predicate: Predicate) -> "DecomposedPredicate":
    """Split a predicate into the three factor classes CACQ needs.

    Returns single-variable factors (grouped-filter candidates),
    equijoin factors (SteM probes), and a residue of everything else
    (disjunctions, band-join inequalities) evaluated as an opaque
    post-filter.
    """
    singles: List[Comparison] = []
    joins: List[ColumnComparison] = []
    residual: List[Predicate] = []
    for factor in predicate.conjuncts():
        if isinstance(factor, Comparison):
            singles.append(factor)
        elif isinstance(factor, ColumnComparison) and factor.is_equijoin():
            joins.append(factor)
        else:
            residual.append(factor)
    return DecomposedPredicate(singles, joins, residual)


class DecomposedPredicate:
    """The result of :func:`decompose`."""

    __slots__ = ("single_variable", "equijoins", "residual")

    def __init__(self, single_variable: List[Comparison],
                 equijoins: List[ColumnComparison],
                 residual: List[Predicate]):
        self.single_variable = single_variable
        self.equijoins = equijoins
        self.residual = residual

    def residual_predicate(self) -> Predicate:
        if not self.residual:
            return ALWAYS_TRUE
        if len(self.residual) == 1:
            return self.residual[0]
        return And(*self.residual)

    def __repr__(self) -> str:
        return (f"Decomposed(single={self.single_variable}, "
                f"joins={self.equijoins}, residual={self.residual})")
