"""The explicit dataflow scripting language (Section 2).

"Dataflows are initiated by clients either via an ad hoc query language
(a basic version of SQL), or via a scripting language for representing
dataflow graphs explicitly."  This is that second language: a line-
oriented script that names nodes and wires edges, compiled onto the
Fjord machinery.  Example::

    # comments start with '#'
    node src    = source
    node hot    = select(temperature > 30)
    node ids    = project(sensor_id, temperature)
    node dedup  = dupelim
    node top    = limit(100)
    node out    = sink

    edge src -> hot
    edge hot -> ids
    edge ids -> dedup
    edge dedup -> top [capacity=64]
    edge top -> out

Node kinds:

=============  =====================================================
``source``      placeholder; the caller binds a SourceModule by name
``sink``        a CollectingSink is created (or bind your own)
``select(p)``   :class:`~repro.core.operators.Select` with predicate p
``project(a,b)``/``project(out=in,...)``  projection / rename
``dupelim``     duplicate elimination
``sort(col)`` / ``sort(col desc)``        sort
``limit(n)``    first n tuples
``union``       2-input bag union
``juggle(col)`` online reordering classified by column
=============  =====================================================

Edge options in ``[...]``: ``capacity=N`` (bounded queue), ``pull``
(PullQueue flavour).  The result is a ready-to-run
:class:`~repro.fjords.fjord.Fjord`; sinks are retrievable by node name.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.core.operators import (DupElim, Limit, Project, Select, Sort,
                                  Union)
from repro.errors import ParseError, PlanError
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink, Module
from repro.fjords.queues import PullQueue, PushQueue
from repro.juggle.juggle import Juggle
from repro.query.parser import parse_predicate

_NODE_RE = re.compile(
    r"^node\s+(?P<name>\w+)\s*=\s*(?P<kind>\w+)\s*(\((?P<args>.*)\))?\s*$")
_EDGE_RE = re.compile(
    r"^edge\s+(?P<src>\w+)(\.(?P<outport>\d+))?\s*->\s*"
    r"(?P<dst>\w+)(\.(?P<inport>\d+))?\s*(\[(?P<opts>[^\]]*)\])?\s*$")


class ScriptNode:
    __slots__ = ("name", "kind", "args", "line_no")

    def __init__(self, name: str, kind: str, args: str, line_no: int):
        self.name = name
        self.kind = kind
        self.args = args or ""
        self.line_no = line_no


class ScriptEdge:
    __slots__ = ("src", "out_port", "dst", "in_port", "capacity", "pull",
                 "line_no")

    def __init__(self, src: str, out_port: int, dst: str, in_port: int,
                 capacity: int, pull: bool, line_no: int):
        self.src = src
        self.out_port = out_port
        self.dst = dst
        self.in_port = in_port
        self.capacity = capacity
        self.pull = pull
        self.line_no = line_no


class DataflowScript:
    """A parsed script; :meth:`build` instantiates it as a Fjord."""

    def __init__(self, nodes: List[ScriptNode], edges: List[ScriptEdge],
                 text: str):
        self.nodes = {n.name: n for n in nodes}
        self.edges = edges
        self.text = text

    # -- compilation ------------------------------------------------------
    def build(self, bindings: Optional[Dict[str, Module]] = None,
              name: str = "scripted") -> Fjord:
        """Instantiate the graph.

        ``bindings`` supplies modules for ``source`` nodes (required)
        and optionally overrides ``sink`` nodes.
        """
        bindings = dict(bindings or {})
        fjord = Fjord(name)
        modules: Dict[str, Module] = {}
        for node in self.nodes.values():
            modules[node.name] = self._instantiate(node, bindings)
            modules[node.name].name = node.name
            fjord.add(modules[node.name])
        for edge in self.edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in modules:
                    raise PlanError(
                        f"line {edge.line_no}: edge references unknown "
                        f"node {endpoint!r}")
            fjord.connect(modules[edge.src], modules[edge.dst],
                          out_port=edge.out_port, in_port=edge.in_port,
                          queue_cls=PullQueue if edge.pull else PushQueue,
                          capacity=edge.capacity)
        return fjord

    def _instantiate(self, node: ScriptNode,
                     bindings: Dict[str, Module]) -> Module:
        kind = node.kind.lower()
        args = node.args.strip()
        if kind == "source":
            module = bindings.get(node.name)
            if module is None:
                raise PlanError(
                    f"line {node.line_no}: source node {node.name!r} "
                    f"needs a binding (pass bindings={{{node.name!r}: "
                    f"<SourceModule>}})")
            return module
        if kind == "sink":
            return bindings.get(node.name) or CollectingSink(node.name)
        if kind == "select":
            return Select(parse_predicate(args))
        if kind == "project":
            columns = self._parse_projection(args, node.line_no)
            return Project(columns)
        if kind == "dupelim":
            return DupElim()
        if kind == "sort":
            parts = args.split()
            if not parts:
                raise PlanError(
                    f"line {node.line_no}: sort needs a column")
            descending = len(parts) > 1 and parts[1].lower() == "desc"
            return Sort(parts[0], descending=descending)
        if kind == "limit":
            try:
                return Limit(int(args))
            except ValueError:
                raise PlanError(
                    f"line {node.line_no}: limit needs an integer") from None
        if kind == "union":
            return Union()
        if kind == "juggle":
            column = args.strip()
            if not column:
                raise PlanError(
                    f"line {node.line_no}: juggle needs a column")
            return Juggle(classify=lambda t, _c=column: t[_c])
        raise PlanError(
            f"line {node.line_no}: unknown node kind {node.kind!r}")

    @staticmethod
    def _parse_projection(args: str, line_no: int):
        if not args.strip():
            raise PlanError(f"line {line_no}: project needs columns")
        items = [a.strip() for a in args.split(",")]
        if any("=" in item for item in items):
            mapping = {}
            for item in items:
                if "=" not in item:
                    raise PlanError(
                        f"line {line_no}: mix of renamed and plain "
                        f"columns; rename all or none")
                out, _eq, src = item.partition("=")
                mapping[out.strip()] = src.strip()
            return mapping
        return items

    def sinks(self, fjord: Fjord) -> Dict[str, CollectingSink]:
        """The sink modules of a built fjord, by node name."""
        return {name: fjord.module(name)
                for name, node in self.nodes.items()
                if node.kind.lower() == "sink"
                and isinstance(fjord.module(name), CollectingSink)}


def parse_script(text: str) -> DataflowScript:
    """Parse the scripting language into a :class:`DataflowScript`."""
    nodes: List[ScriptNode] = []
    edges: List[ScriptEdge] = []
    seen = set()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        node_match = _NODE_RE.match(line)
        if node_match:
            name = node_match.group("name")
            if name in seen:
                raise ParseError(f"duplicate node {name!r} "
                                 f"(line {line_no})")
            seen.add(name)
            nodes.append(ScriptNode(name, node_match.group("kind"),
                                    node_match.group("args"), line_no))
            continue
        edge_match = _EDGE_RE.match(line)
        if edge_match:
            opts = edge_match.group("opts") or ""
            capacity = 0
            pull = False
            for opt in filter(None, (o.strip() for o in opts.split(","))):
                if opt.startswith("capacity="):
                    capacity = int(opt.split("=", 1)[1])
                elif opt == "pull":
                    pull = True
                else:
                    raise ParseError(
                        f"unknown edge option {opt!r} (line {line_no})")
            edges.append(ScriptEdge(
                edge_match.group("src"),
                int(edge_match.group("outport") or 0),
                edge_match.group("dst"),
                int(edge_match.group("inport") or 0),
                capacity, pull, line_no))
            continue
        raise ParseError(f"cannot parse script line {line_no}: {raw!r}")
    if not nodes:
        raise ParseError("script defines no nodes")
    return DataflowScript(nodes, edges, text)
