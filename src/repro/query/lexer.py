"""Tokenizer for the TelegraphCQ query subset.

Covers the paper's examples verbatim: SELECT / FROM / WHERE with
comparisons, AND/OR/NOT, aliases, aggregate calls, and the for-loop
window clause::

    for (t = ST; t < ST + 50; t += 5) {
        WindowIs(ClosingStockPrices, t - 4, t);
    }
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ParseError

KEYWORDS = {
    "select", "from", "where", "as", "and", "or", "not", "for",
    "windowis", "group", "by", "distinct", "order", "asc", "desc",
}

#: Multi-character operators, longest first so the scanner is greedy.
OPERATORS = ["<=", ">=", "==", "!=", "<>", "++", "--", "+=", "-=",
             "<", ">", "=", "+", "-", "*", "/", "(", ")", "{", "}",
             ",", ";", "."]


@dataclass(frozen=True)
class Token:
    kind: str          # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'eof'
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.text == op


def tokenize(text: str) -> List[Token]:
    """Scan the query text into a token list ending with an EOF token."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":
            # SQL comment... but '--' is also the decrement operator.
            # Inside a for-loop header decrement always follows an
            # identifier; comments follow whitespace/line starts.  We
            # disambiguate by what precedes: an identifier means the
            # operator.
            if tokens and tokens[-1].kind == "ident":
                tokens.append(Token("op", "--", i))
                i += 2
                continue
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'" or ch == '"':
            end = text.find(ch, i + 1)
            if end == -1:
                raise ParseError("unterminated string literal", i, text)
            tokens.append(Token("string", text[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or
                             (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A trailing dot followed by a letter is qualified
                    # access (42.foo is nonsense, but guard anyway).
                    if j + 1 < n and not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            tokens.append(Token(kind, word.lower() if kind == "keyword"
                                else word, i))
            i = j
            continue
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", i, text)
    tokens.append(Token("eof", "", n))
    return tokens
