"""Static query plans — the iterator-model baseline (Figure 4, E1).

A conventional optimizer freezes an operator order at plan time using
whatever statistics it has, then never reconsiders.  This module
implements exactly that:

* pull-based iterators (scan, filter, projection, hash join) in the
  PostgreSQL/Volcano style;
* :class:`StaticFilterPlan` — a filter pipeline in a fixed order chosen
  from *estimated* selectivities, applied to a stream tuple-at-a-time.
  This is what the eddy is benchmarked against: when true selectivities
  drift after planning, the static order keeps paying the stale cost,
  while the eddy re-routes (experiment E1).

Work accounting: each predicate evaluation counts one unit, so the
comparison with the eddy is apples-to-apples and deterministic,
independent of interpreter noise; wall-clock benchmarks are layered on
top by pytest-benchmark.
"""

from __future__ import annotations

from typing import (Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple as TypingTuple)

from repro.core.tuples import Schema, Tuple
from repro.errors import PlanError
from repro.query.predicates import Predicate


class PlanIterator:
    """Volcano-style iterator: open/next/close collapsed into Python
    iteration."""

    def __iter__(self) -> Iterator[Tuple]:
        raise NotImplementedError


class ScanIterator(PlanIterator):
    """Full scan over a materialised table or arrived stream prefix."""

    def __init__(self, tuples: Sequence[Tuple]):
        self.tuples = tuples

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.tuples)


class FilterIterator(PlanIterator):
    def __init__(self, child: PlanIterator, predicate: Predicate):
        self.child = child
        self.predicate = predicate
        self.evaluations = 0

    def __iter__(self) -> Iterator[Tuple]:
        for t in self.child:
            self.evaluations += 1
            if self.predicate.matches(t):
                yield t


class ProjectIterator(PlanIterator):
    def __init__(self, child: PlanIterator, columns: Sequence[str]):
        self.child = child
        self.columns = list(columns)
        self._schema: Optional[Schema] = None

    def __iter__(self) -> Iterator[Tuple]:
        from repro.core.tuples import Column
        for t in self.child:
            if self._schema is None:
                self._schema = Schema([Column(c) for c in self.columns],
                                      sources=t.schema.sources)
            yield Tuple(self._schema,
                        tuple(t[c] for c in self.columns),
                        timestamp=t.timestamp)


class HashJoinIterator(PlanIterator):
    """Classic build/probe hash join: blocks on the build side — the
    behaviour Fjords exist to avoid on streams, kept here as the
    snapshot-query baseline."""

    def __init__(self, build: PlanIterator, probe: PlanIterator,
                 build_key: str, probe_key: str,
                 residual: Optional[Predicate] = None):
        self.build = build
        self.probe = probe
        self.build_key = build_key
        self.probe_key = probe_key
        self.residual = residual

    def __iter__(self) -> Iterator[Tuple]:
        table: Dict[Any, List[Tuple]] = {}
        for t in self.build:
            table.setdefault(t[self.build_key], []).append(t)
        join_schema: Optional[Schema] = None
        for p in self.probe:
            for b in table.get(p[self.probe_key], ()):
                if join_schema is None:
                    join_schema = b.schema.join(p.schema)
                joined = b.concat(p, schema=join_schema)
                if self.residual is None or self.residual.matches(joined):
                    yield joined


class StaticFilterPlan:
    """A conjunctive filter pipeline with a frozen order.

    ``order_by_estimates`` plays the optimizer: it sorts predicates by
    their *estimated* selectivity (cheapest first), which is optimal if
    — and only while — the estimates hold.
    """

    def __init__(self, predicates: Sequence[Predicate],
                 estimated_selectivities: Optional[Sequence[float]] = None):
        if estimated_selectivities is not None:
            if len(estimated_selectivities) != len(predicates):
                raise PlanError("one estimate per predicate required")
            ranked = sorted(zip(estimated_selectivities, range(len(predicates))))
            self.predicates = [predicates[i] for _est, i in ranked]
        else:
            self.predicates = list(predicates)
        self.evaluations = 0
        self.passed = 0

    def process(self, t: Tuple) -> bool:
        """Run one tuple through the frozen pipeline."""
        for pred in self.predicates:
            self.evaluations += 1
            if not pred.matches(t):
                return False
        self.passed += 1
        return True

    def run(self, tuples: Iterable[Tuple]) -> List[Tuple]:
        return [t for t in tuples if self.process(t)]

    def describe(self) -> str:
        return " -> ".join(repr(p) for p in self.predicates)


def best_static_work(tuples: Sequence[Tuple],
                     predicates: Sequence[Predicate]) -> TypingTuple[int, List[int]]:
    """Offline oracle: the minimum total predicate evaluations any fixed
    order could have achieved on this exact data, found by trying every
    permutation (the paper frames eddies against an "optimal schedule"
    that is NP-hard in general; for the small filter counts of E1 brute
    force is exact).

    Returns (work, best order as predicate indices).
    """
    import itertools as it
    best = None
    best_order: List[int] = []
    # Precompute match bitsets per predicate to make permutations cheap.
    matches: List[List[bool]] = [
        [p.matches(t) for t in tuples] for p in predicates]
    n = len(tuples)
    for perm in it.permutations(range(len(predicates))):
        work = 0
        alive = list(range(n))
        for pi in perm:
            work += len(alive)
            alive = [i for i in alive if matches[pi][i]]
        if best is None or work < best:
            best = work
            best_order = list(perm)
    return best or 0, best_order
