"""baselines subpackage of the TelegraphCQ reproduction."""
