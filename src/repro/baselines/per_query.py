"""The unshared continuous-query baseline: one plan per query.

"Processing each query individually can be slow and wasteful of
resources, as the queries are likely to have some commonality"
(Section 1.1).  This engine does exactly the wasteful thing — every
arriving tuple is evaluated against every query's full predicate,
independently — so experiment E3 can measure what CACQ's sharing buys.

The API mirrors :class:`repro.core.cacq.CACQEngine` so the benchmark
drives both identically.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence

from repro.core.tuples import Schema, Tuple
from repro.errors import QueryError
from repro.query.predicates import Predicate


class PerQueryQuery:
    """One independently-processed continuous query."""

    def __init__(self, qid: int, streams: frozenset, predicate: Predicate,
                 name: str = ""):
        self.qid = qid
        self.streams = streams
        self.predicate = predicate
        self.name = name or f"pq{qid}"
        self.results: List[Tuple] = []
        #: per-query symmetric-join state (each query pays for its own,
        #: unlike CACQ's shared SteMs).
        self.join_state: Dict[str, List[Tuple]] = {s: [] for s in streams}


class PerQueryEngine:
    """Evaluates every query separately on every tuple."""

    def __init__(self) -> None:
        self.schemas: Dict[str, Schema] = {}
        self.queries: Dict[int, PerQueryQuery] = {}
        self._next_qid = itertools.count()
        self.tuples_in = 0
        self.predicate_evaluations = 0

    def register_stream(self, schema: Schema) -> None:
        if not schema.name:
            raise QueryError("stream schema needs a name")
        self.schemas[schema.name] = schema

    def add_query(self, streams: Sequence[str], predicate: Predicate,
                  name: str = "") -> PerQueryQuery:
        for s in streams:
            if s not in self.schemas:
                raise QueryError(f"unknown stream {s!r}")
        query = PerQueryQuery(next(self._next_qid), frozenset(streams),
                              predicate, name=name)
        self.queries[query.qid] = query
        return query

    def remove_query(self, query: PerQueryQuery) -> None:
        self.queries.pop(query.qid, None)

    def push(self, stream: str, *, timestamp: Optional[int] = None,
             **values: Any) -> int:
        schema = self.schemas.get(stream)
        if schema is None:
            raise QueryError(f"unknown stream {stream!r}")
        row = tuple(values[c] for c in schema.column_names())
        return self.push_tuple(stream, schema.make(*row, timestamp=timestamp))

    def push_tuple(self, stream: str, t: Tuple) -> int:
        """Route the tuple through every query; returns deliveries."""
        self.tuples_in += 1
        delivered = 0
        for query in self.queries.values():
            if stream not in query.streams:
                continue
            if len(query.streams) == 1:
                self.predicate_evaluations += 1
                if query.predicate.matches(t):
                    query.results.append(t)
                    delivered += 1
                continue
            delivered += self._join_push(query, stream, t)
        return delivered

    def _join_push(self, query: PerQueryQuery, stream: str,
                   t: Tuple) -> int:
        """Per-query symmetric join: store, then pair with every stored
        tuple of the other streams and test the full predicate."""
        query.join_state[stream].append(t)
        others = [s for s in query.streams if s != stream]
        if len(others) != 1:
            raise QueryError(
                "the per-query baseline supports 1- and 2-stream queries")
        delivered = 0
        for other_tuple in query.join_state[others[0]]:
            joined = t.concat(other_tuple) if t.tid > other_tuple.tid \
                else other_tuple.concat(t)
            self.predicate_evaluations += 1
            if query.predicate.matches(joined):
                query.results.append(joined)
                delivered += 1
        return delivered

    def stats(self) -> Dict[str, Any]:
        return {
            "queries": len(self.queries),
            "tuples_in": self.tuples_in,
            "predicate_evaluations": self.predicate_evaluations,
        }
