"""A NiagaraCQ-style grouped-plan baseline ([CDTW00], Section 5).

NiagaraCQ "builds static plans for the different continuous queries in
the system, and allows two queries to share a module if they have the
same input": queries whose predicates share an *expression signature*
(same stream, attribute, and operator) are folded into one group plan
whose constants live in a constant table.

Faithful to the published design:

* **equality** groups evaluate by hash lookup into the constant table
  (NiagaraCQ's split operator handles this well);
* **range** groups scan their constant list per tuple — NiagaraCQ did
  not index range constants, which is precisely where CACQ's grouped
  filters pull ahead in [MSHR02] and in experiment E3/E4;
* grouping is static: plans are not re-ordered as selectivities change.

Only single-stream conjunctive queries are grouped (as in the published
comparison); anything else falls back to per-query evaluation.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple as TypingTuple

from repro.core.tuples import Schema, Tuple
from repro.errors import QueryError
from repro.query.predicates import OPS, Predicate, decompose


class NiagaraQuery:
    def __init__(self, qid: int, stream: str, predicate: Predicate,
                 name: str = ""):
        decomposed = decompose(predicate)
        self.qid = qid
        self.stream = stream
        self.predicate = predicate
        self.factors = decomposed.single_variable
        self.residual = decomposed.residual_predicate()
        self.has_residual = bool(decomposed.residual)
        if decomposed.equijoins:
            raise QueryError(
                "the NiagaraCQ baseline covers single-stream queries")
        self.name = name or f"nq{qid}"
        self.results: List[Tuple] = []


class _SignatureGroup:
    """One shared group plan: all factors with the same
    (attribute, operator) signature, keyed by constant."""

    def __init__(self, attribute: str, op: str):
        self.attribute = attribute
        self.op = op
        #: equality: constant -> query ids (hash lookup).
        self.eq_table: Dict[Any, Set[int]] = {}
        #: ranges: unindexed (constant, qid) list, scanned per tuple.
        self.constants: List[TypingTuple[Any, int]] = []
        self.scans = 0

    def add(self, constant: Any, qid: int) -> None:
        if self.op == "==":
            self.eq_table.setdefault(constant, set()).add(qid)
        else:
            self.constants.append((constant, qid))

    def remove_query(self, qid: int) -> None:
        for ids in self.eq_table.values():
            ids.discard(qid)
        self.constants = [(c, q) for (c, q) in self.constants if q != qid]

    def matching(self, value: Any) -> Set[int]:
        if self.op == "==":
            return set(self.eq_table.get(value, ()))
        fn = OPS[self.op]
        out: Set[int] = set()
        for constant, qid in self.constants:
            self.scans += 1
            try:
                if fn(value, constant):
                    out.add(qid)
            except TypeError:
                continue
        return out


class NiagaraEngine:
    """Grouped static continuous-query processing."""

    def __init__(self) -> None:
        self.schemas: Dict[str, Schema] = {}
        self.queries: Dict[int, NiagaraQuery] = {}
        self._next_qid = itertools.count()
        #: (stream, attribute, op) -> group plan.
        self.groups: Dict[TypingTuple[str, str, str], _SignatureGroup] = {}
        #: factors a query registered, for the all-factors check.
        self._factor_counts: Dict[int, int] = {}
        self.tuples_in = 0
        self.group_probes = 0

    def register_stream(self, schema: Schema) -> None:
        if not schema.name:
            raise QueryError("stream schema needs a name")
        self.schemas[schema.name] = schema

    def add_query(self, streams: Sequence[str], predicate: Predicate,
                  name: str = "") -> NiagaraQuery:
        if len(streams) != 1:
            raise QueryError(
                "the NiagaraCQ baseline covers single-stream queries")
        stream = streams[0]
        if stream not in self.schemas:
            raise QueryError(f"unknown stream {stream!r}")
        query = NiagaraQuery(next(self._next_qid), stream, predicate,
                             name=name)
        self.queries[query.qid] = query
        self._factor_counts[query.qid] = len(query.factors)
        for factor in query.factors:
            attr = factor.column.rsplit(".", 1)[-1]
            key = (stream, attr, factor.op)
            group = self.groups.get(key)
            if group is None:
                group = _SignatureGroup(attr, factor.op)
                self.groups[key] = group
            group.add(factor.value, query.qid)
        return query

    def remove_query(self, query: NiagaraQuery) -> None:
        self.queries.pop(query.qid, None)
        self._factor_counts.pop(query.qid, None)
        for group in self.groups.values():
            group.remove_query(query.qid)

    def push(self, stream: str, *, timestamp: Optional[int] = None,
             **values: Any) -> int:
        schema = self.schemas.get(stream)
        if schema is None:
            raise QueryError(f"unknown stream {stream!r}")
        row = tuple(values[c] for c in schema.column_names())
        return self.push_tuple(stream,
                               schema.make(*row, timestamp=timestamp))

    def push_tuple(self, stream: str, t: Tuple) -> int:
        """Evaluate the tuple against every group plan; a query fires
        when all of its factors matched and its residual holds."""
        self.tuples_in += 1
        satisfied_counts: Dict[int, int] = defaultdict(int)
        for (g_stream, attr, _op), group in self.groups.items():
            if g_stream != stream:
                continue
            if not t.schema.has_column(attr):
                continue
            self.group_probes += 1
            for qid in group.matching(t[attr]):
                satisfied_counts[qid] += 1
        delivered = 0
        for qid, n in satisfied_counts.items():
            query = self.queries.get(qid)
            if query is None or query.stream != stream:
                continue
            if n != self._factor_counts[qid]:
                continue
            if query.has_residual and not query.residual.matches(t):
                continue
            query.results.append(t)
            delivered += 1
        # Queries with no indexable factors at all still need evaluating.
        for query in self.queries.values():
            if query.stream == stream and not query.factors:
                if query.predicate.matches(t):
                    query.results.append(t)
                    delivered += 1
        return delivered

    def stats(self) -> Dict[str, Any]:
        return {
            "queries": len(self.queries),
            "groups": len(self.groups),
            "tuples_in": self.tuples_in,
            "group_probes": self.group_probes,
            "range_scans": sum(g.scans for g in self.groups.values()),
        }
