"""repro.sched — the unified, pluggable scheduler core.

One :class:`Schedulable` protocol (``run_once(quantum) -> StepResult``
plus a cheap ``ready()`` hint), one :class:`Scheduler` with pluggable
policies (round-robin, busy-first, deficit-round-robin, pressure-aware),
one quiescence/stall protocol, and the §4.3 adaptive quantum
controller.  Every run loop in the system — Fjords, Execution Objects,
the Executor, the server facade, Flux drains — routes through here.
"""

from repro.sched.policy import (BusyFirstPolicy, DeficitRoundRobinPolicy,
                                POLICIES, PressureAwarePolicy,
                                RoundRobinPolicy, SchedulingPolicy,
                                make_policy)
from repro.sched.protocol import (FunctionUnit, Schedulable, StepResult,
                                  coerce_step_result, unit_pressure,
                                  unit_ready, unit_selectivity_sample)
from repro.sched.quantum import AdaptiveQuantumController
from repro.sched.scheduler import (QuiescenceDetector, Scheduler,
                                   SchedulerStall, UnitRecord, drive)

__all__ = [
    "AdaptiveQuantumController", "BusyFirstPolicy",
    "DeficitRoundRobinPolicy", "FunctionUnit", "POLICIES",
    "PressureAwarePolicy", "QuiescenceDetector", "RoundRobinPolicy",
    "Schedulable", "Scheduler", "SchedulerStall", "SchedulingPolicy",
    "StepResult", "UnitRecord", "coerce_step_result", "drive",
    "make_policy", "unit_pressure", "unit_ready",
    "unit_selectivity_sample",
]
