"""Pluggable scheduling policies for the unified scheduler core.

A policy answers three questions for every scheduler pass:

* :meth:`SchedulingPolicy.select` — which live units run this pass, in
  what order;
* :meth:`SchedulingPolicy.quantum_for` — with what quantum (policies
  may throttle or boost individual units);
* :meth:`SchedulingPolicy.on_result` — feedback after each quantum.

Policies see :class:`~repro.sched.scheduler.UnitRecord` objects — the
scheduler's per-unit bookkeeping (weight, query class, starvation age,
last-pass progress) — plus the owning scheduler for pass counters and
decision telemetry.

The four shipped policies:

* ``round_robin`` — every live unit, registration order, every pass.
  Bit-compatible with the historical ``Fjord.step`` /
  ``ExecutionObject`` loops: it does **not** consult ``ready()``, so
  idle units are still polled exactly as before.
* ``busy_first`` — round-robin order, stably sorted so units that made
  progress last pass go first (ported from the old ExecutionObject).
* ``deficit_round_robin`` — weighted fairness: each pass a live unit
  accrues ``weight`` credit and runs when its credit reaches 1.
  Heavier units additionally get proportionally larger quanta.  Credit
  is forfeited while a unit is idle (no banking), so a quiet unit
  cannot burst later.
* ``pressure_aware`` — backpressure- and QoS-aware: skips units that
  report no ready work, skips units whose downstream queues are at
  capacity (``pressure() >= 1.0``), and throttles units belonging to
  over-budget query classes using live :class:`~repro.monitor.qos`
  signals.  A starvation guard runs any unit skipped ``starvation_limit``
  passes in a row regardless, bounding the starvation tail.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import ExecutionError


class SchedulingPolicy:
    """Base policy: subclasses override selection/quantum/feedback."""

    name = "base"

    def select(self, active: List[Any], sched: Any) -> List[Any]:
        """The records to run this pass, in run order.  ``active`` is
        every record whose unit is not finished, registration order."""
        raise NotImplementedError

    def quantum_for(self, record: Any, quantum: Optional[int],
                    sched: Any) -> Optional[int]:
        """The quantum for one selected record; default pass-through
        (None lets the unit use its own default batch)."""
        return quantum

    def on_result(self, record: Any, result: Any, sched: Any) -> None:
        """Feedback after a quantum; default does nothing."""

    def describe(self) -> str:
        return self.name


class RoundRobinPolicy(SchedulingPolicy):
    """Every live unit, registration order — the historical loop."""

    name = "round_robin"

    def select(self, active: List[Any], sched: Any) -> List[Any]:
        return list(active)


class BusyFirstPolicy(SchedulingPolicy):
    """Units that progressed last pass run first (stable order).

    Never-run units count as busy, exactly like the old
    ``ExecutionObject._last_worked.get(name, True)`` default, so the
    port is behaviour-preserving.
    """

    name = "busy_first"

    def select(self, active: List[Any], sched: Any) -> List[Any]:
        return sorted(active, key=lambda rec: not rec.last_worked)


class DeficitRoundRobinPolicy(SchedulingPolicy):
    """Weighted fairness via per-unit deficit counters.

    Each pass every live unit accrues ``record.weight`` credit; a unit
    runs when its credit reaches 1 and spends 1 on selection.  A weight
    of 0.5 therefore runs every other pass, 0.25 every fourth.  Weights
    above 1 run every pass *and* scale the granted quantum (service is
    proportional, as in classic DRR where the deficit is in bytes).
    Idle units forfeit their credit — progress-less passes must not bank
    a burst.  Credit is capped so a unit skipped by the cap cannot
    accumulate unbounded arrears.
    """

    name = "deficit_round_robin"

    CREDIT_CAP = 4.0
    MAX_QUANTUM_BOOST = 4

    def __init__(self) -> None:
        self._credit: Dict[str, float] = {}

    def select(self, active: List[Any], sched: Any) -> List[Any]:
        chosen = []
        for rec in active:
            credit = min(self._credit.get(rec.name, 0.0) + rec.weight,
                         self.CREDIT_CAP)
            if credit >= 1.0:
                credit -= 1.0
                chosen.append(rec)
            self._credit[rec.name] = credit
        return chosen

    def quantum_for(self, record: Any, quantum: Optional[int],
                    sched: Any) -> Optional[int]:
        if quantum is None or record.weight <= 1.0:
            return quantum
        boost = min(record.weight, float(self.MAX_QUANTUM_BOOST))
        return max(1, int(round(quantum * boost)))

    def on_result(self, record: Any, result: Any, sched: Any) -> None:
        if not result.worked:
            self._credit[record.name] = 0.0

    def forget(self, name: str) -> None:
        self._credit.pop(name, None)


class PressureAwarePolicy(SchedulingPolicy):
    """Backpressure- and QoS-aware selection.

    Skip rules, applied in order (each skip is counted in the
    scheduler's decision telemetry):

    1. **starvation guard** — a unit skipped for ``starvation_limit``
       consecutive passes runs unconditionally; no ready unit can
       starve beyond the limit, whatever the load shape.  At most
       ``max_overrides_per_pass`` overrides fire per pass (oldest
       first), so a large population of quiet units is polled in a
       rotating trickle instead of one synchronized pass-length spike —
       the spike itself would starve the busy units.  A deferred unit
       is forced on a later pass (it only ages further, so it stays at
       the head of the rotation); the guard bound therefore degrades
       gracefully to ``starvation_limit + ceil(quiet / cap)`` passes.
       A forced run that finds *no* work doubles that unit's personal
       guard limit (capped at ``BACKOFF_CAP`` × the base limit) — a
       unit whose not-ready hint keeps proving correct is polled
       exponentially less often; the first productive run snaps its
       limit back to the base.  Units that claim ready work never rely
       on the guard at all: they are selected through the normal path.
    2. **not ready** — ``ready()`` says no work is available; polling
       it would burn a quantum for nothing.
    3. **backpressure** — ``pressure() >= pressure_limit``: the unit's
       downstream queues are (nearly) full, so producing more would be
       refused or dropped.  Let the consumers drain first.
    4. **QoS throttle** — the unit's query class is over budget: a
       per-class debt accumulates at the class's throttle ratio and a
       unit is skipped whenever its debt reaches 1 (so ratio 0.5 drops
       every second quantum).

    ``qos`` may be a callable ``query_class -> ratio in [0, 1]``, or a
    :class:`~repro.monitor.qos.LoadShedder`, in which case the shedder's
    live ``drop_rate`` throttles every class the user marked
    non-preferred (``preferences[class] <= 0``) — the paper's "push user
    preferences down into the query execution process" applied to
    scheduling quanta rather than tuples.
    """

    name = "pressure_aware"

    #: a persistently idle unit's guard limit grows to at most
    #: BACKOFF_CAP times the base starvation_limit.
    BACKOFF_CAP = 16

    def __init__(self, starvation_limit: int = 8,
                 pressure_limit: float = 1.0,
                 qos: Optional[Any] = None,
                 max_overrides_per_pass: int = 8):
        if starvation_limit < 1:
            raise ExecutionError("starvation_limit must be >= 1")
        if max_overrides_per_pass < 1:
            raise ExecutionError("max_overrides_per_pass must be >= 1")
        self.starvation_limit = starvation_limit
        self.pressure_limit = pressure_limit
        self.qos = qos
        self.max_overrides_per_pass = max_overrides_per_pass
        self._debt: Dict[str, float] = {}
        #: per-unit backed-off guard limit (absent = base limit).
        self._guard_limit: Dict[str, int] = {}
        self._forced_this_pass: set = set()

    # -- QoS ratio ------------------------------------------------------
    def _throttle_ratio(self, query_class: Any) -> float:
        if self.qos is None or query_class is None:
            return 0.0
        if callable(self.qos):
            return float(self.qos(query_class))
        # LoadShedder duck: non-preferred classes absorb the drop rate.
        drop_rate = float(getattr(self.qos, "drop_rate", 0.0))
        preferences = getattr(self.qos, "preferences", None)
        if not drop_rate:
            return 0.0
        if preferences and preferences.get(query_class, 0.0) > 0.0:
            return 0.0
        return min(drop_rate, 1.0)

    # -- selection ------------------------------------------------------
    def select(self, active: List[Any], sched: Any) -> List[Any]:
        starving = [rec for rec in active
                    if sched.passes - rec.last_run_pass
                    >= self._guard_limit.get(rec.name,
                                             self.starvation_limit)]
        starving.sort(key=lambda rec: rec.last_run_pass)
        forced = set()
        chosen = []
        for rec in starving[:self.max_overrides_per_pass]:
            sched.count_decision("starvation_override")
            forced.add(rec.name)
            chosen.append(rec)
        self._forced_this_pass = forced
        for rec in active:
            if rec.name in forced:
                continue
            if not rec.is_ready():
                sched.count_decision("skip_not_ready")
                continue
            if rec.current_pressure() >= self.pressure_limit:
                sched.count_decision("skip_backpressure")
                continue
            ratio = self._throttle_ratio(rec.query_class)
            if ratio > 0.0:
                debt = self._debt.get(rec.name, 0.0) + ratio
                if debt >= 1.0:
                    self._debt[rec.name] = debt - 1.0
                    sched.count_decision("skip_qos_throttle")
                    continue
                self._debt[rec.name] = debt
            chosen.append(rec)
        return chosen

    def on_result(self, record: Any, result: Any, sched: Any) -> None:
        if result.worked:
            self._guard_limit.pop(record.name, None)
        elif record.name in self._forced_this_pass:
            current = self._guard_limit.get(record.name,
                                            self.starvation_limit)
            self._guard_limit[record.name] = min(
                current * 2, self.starvation_limit * self.BACKOFF_CAP)

    def forget(self, name: str) -> None:
        self._debt.pop(name, None)
        self._guard_limit.pop(name, None)


#: name -> zero-argument factory for the shipped policies.
POLICY_FACTORIES: Dict[str, Callable[[], SchedulingPolicy]] = {
    "round_robin": RoundRobinPolicy,
    "busy_first": BusyFirstPolicy,
    "deficit_round_robin": DeficitRoundRobinPolicy,
    "pressure_aware": PressureAwarePolicy,
}

POLICIES = tuple(POLICY_FACTORIES)


def make_policy(policy: Any) -> SchedulingPolicy:
    """Resolve a policy name or pass an instance through."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        factory = POLICY_FACTORIES[policy]
    except (KeyError, TypeError):
        raise ExecutionError(f"unknown scheduling policy {policy!r}; "
                             f"expected one of {POLICIES}") from None
    return factory()
