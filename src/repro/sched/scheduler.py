"""The unified scheduler core (Section 4.2.2's executor, generalised).

One :class:`Scheduler` replaces the four hand-rolled run loops the repo
used to carry (``Fjord.step``/``run``, ``ExecutionObject``/``Executor``
passes, ``TelegraphCQServer.step``, Flux drain ticks).  It hosts any
number of :class:`~repro.sched.protocol.Schedulable` units under a
pluggable :class:`~repro.sched.policy.SchedulingPolicy`, with:

* one progress vocabulary — every pass returns a
  :class:`~repro.sched.protocol.StepResult`;
* one quiescence/stall protocol — :class:`QuiescenceDetector` decides
  "no progress" and "will never finish" the same way everywhere;
* optional §4.3 adaptive quanta — an
  :class:`~repro.sched.quantum.AdaptiveQuantumController` sizes each
  unit's batch from its selectivity drift and pushes the result into
  units that accept ``apply_quantum``;
* scheduler telemetry — per-policy decision counts, ready-set
  occupancy, starvation ages, and quantum trajectories, published
  through the process registry as ``tcq_sched_*`` series.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ExecutionError
from repro.monitor.telemetry import get_registry
import repro.monitor.tracing as tracing
from repro.sched.policy import SchedulingPolicy, make_policy
from repro.sched.protocol import (StepResult, coerce_step_result,
                                  unit_pressure, unit_ready,
                                  unit_selectivity_sample)
from repro.sched.quantum import AdaptiveQuantumController

_SCHED_IDS = itertools.count()


class SchedulerStall(ExecutionError):
    """``run_until_finished`` exhausted its pass budget with live units.

    Carries the names of the stuck units so callers can build their own
    diagnostics (Fjord re-raises as a PlanError naming its modules).
    """

    def __init__(self, scheduler: str, stuck: List[str], passes: int):
        self.scheduler = scheduler
        self.stuck = list(stuck)
        self.passes = passes
        super().__init__(
            f"{scheduler}: units {self.stuck} did not finish within "
            f"{passes} passes")


class QuiescenceDetector:
    """The shared stall/idle detector.

    A scheduling pass that reports no progress while every pollable
    source is exhausted is *quiescent*; ``idle_limit`` consecutive such
    passes stop a drive loop.  The default of 1 is bit-compatible with
    every historical loop (they all stopped on the first idle pass).
    """

    def __init__(self, idle_limit: int = 1):
        if idle_limit < 1:
            raise ExecutionError("idle_limit must be >= 1")
        self.idle_limit = idle_limit
        self.idle_passes = 0

    def observe(self, result: StepResult) -> bool:
        """Feed one pass result; returns True once quiescent."""
        if result.worked:
            self.idle_passes = 0
            return False
        self.idle_passes += 1
        return self.idle_passes >= self.idle_limit

    def reset(self) -> None:
        self.idle_passes = 0


class UnitRecord:
    """The scheduler's per-unit bookkeeping, visible to policies."""

    __slots__ = ("unit", "name", "weight", "query_class", "adaptive",
                 "last_worked", "last_run_pass", "runs", "busy_runs",
                 "worst_starvation")

    def __init__(self, unit: Any, name: str, weight: float,
                 query_class: Any, added_at_pass: int):
        self.unit = unit
        self.name = name
        self.weight = weight
        self.query_class = query_class
        #: does the unit publish selectivity samples for quantum control?
        self.adaptive = hasattr(unit, "selectivity_sample")
        #: never-run units count as "worked" (matches the historical
        #: busy_first default) so fresh units are not deprioritised.
        self.last_worked = True
        self.last_run_pass = added_at_pass
        self.runs = 0
        self.busy_runs = 0
        self.worst_starvation = 0

    def is_ready(self) -> bool:
        return unit_ready(self.unit)

    def current_pressure(self) -> float:
        return unit_pressure(self.unit)

    def __repr__(self) -> str:
        return f"UnitRecord({self.name}, weight={self.weight})"


class Scheduler:
    """Policy-driven cooperative scheduler over Schedulable units."""

    def __init__(self, policy: Any = "round_robin",
                 name: str = "",
                 quantum_controller: Optional[AdaptiveQuantumController]
                 = None,
                 telemetry: bool = True):
        self.policy: SchedulingPolicy = make_policy(policy)
        self.name = name or f"sched#{next(_SCHED_IDS)}"
        self.quantum_controller = quantum_controller
        self._records: List[UnitRecord] = []
        self._by_name: Dict[str, UnitRecord] = {}
        self.passes = 0
        self.decisions: Dict[str, int] = {}
        if telemetry:
            self._telemetry = get_registry()
            self._telemetry.register_collector(self._publish_telemetry)
        else:
            self._telemetry = None

    # -- membership ---------------------------------------------------------
    def add(self, unit: Any, weight: float = 1.0,
            query_class: Any = None) -> UnitRecord:
        name = getattr(unit, "name", "") or f"unit{len(self._records)}"
        if name in self._by_name:
            raise ExecutionError(
                f"{self.name}: duplicate schedulable name {name!r}")
        if weight <= 0:
            raise ExecutionError("unit weight must be > 0")
        record = UnitRecord(unit, name, weight, query_class, self.passes)
        self._records.append(record)
        self._by_name[name] = record
        return record

    def remove(self, name: str) -> None:
        record = self._by_name.pop(name, None)
        if record is None:
            return
        self._records.remove(record)
        forget = getattr(self.policy, "forget", None)
        if forget is not None:
            forget(name)
        if self.quantum_controller is not None:
            self.quantum_controller.forget(name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._records)

    @property
    def units(self) -> List[Any]:
        return [rec.unit for rec in self._records]

    @property
    def live_units(self) -> int:
        return sum(1 for rec in self._records if not rec.unit.finished)

    def record(self, name: str) -> UnitRecord:
        try:
            return self._by_name[name]
        except KeyError:
            raise ExecutionError(
                f"{self.name}: no schedulable named {name!r}") from None

    # -- the pass -----------------------------------------------------------
    def count_decision(self, kind: str) -> None:
        self.decisions[kind] = self.decisions.get(kind, 0) + 1

    def pass_once(self, quantum: Optional[int] = None) -> StepResult:
        """One scheduling pass: the policy selects and orders the live
        units, each selected unit gets one quantum.  Returns the merged
        :class:`StepResult` (worked = any progressed, finished = every
        registered unit is finished)."""
        self.passes += 1
        tracer = tracing.TRACER
        if tracer.active:
            # Stamp hops recorded during this pass with "sched:pass" so
            # traces attribute each hop to the pass that drove it.
            tracer.current_pass = f"{self.name}:{self.passes}"
        active = [rec for rec in self._records if not rec.unit.finished]
        worked = False
        if active:
            if self._telemetry is not None:
                with self._telemetry.trace("sched_pass",
                                           scheduler=self.name):
                    for rec in self.policy.select(active, self):
                        result = self._run_unit(rec, quantum)
                        worked = result.worked or worked
            else:
                for rec in self.policy.select(active, self):
                    result = self._run_unit(rec, quantum)
                    worked = result.worked or worked
        finished = all(rec.unit.finished for rec in self._records)
        if finished:
            return StepResult(worked, finished=True)
        return StepResult.BUSY if worked else StepResult.IDLE

    def _run_unit(self, rec: UnitRecord, quantum: Optional[int]) \
            -> StepResult:
        q = self.policy.quantum_for(rec, quantum, self)
        ctrl = self.quantum_controller
        if ctrl is not None and rec.adaptive:
            q = ctrl.quantum_for(rec.name, q)
        starvation = self.passes - rec.last_run_pass - 1
        if starvation > rec.worst_starvation:
            rec.worst_starvation = starvation
        result = coerce_step_result(rec.unit.run_once(q))
        rec.last_worked = result.worked
        rec.last_run_pass = self.passes
        rec.runs += 1
        if result.worked:
            rec.busy_runs += 1
        self.count_decision("run")
        self.policy.on_result(rec, result, self)
        if ctrl is not None and rec.adaptive:
            sample = unit_selectivity_sample(rec.unit)
            new_quantum = ctrl.after_run(rec.name, sample)
            if new_quantum is not None:
                apply = getattr(rec.unit, "apply_quantum", None)
                if apply is not None:
                    apply(new_quantum)
        return result

    # -- drive loops --------------------------------------------------------
    def run_until_quiescent(self, max_passes: int = 1_000_000,
                            quantum: Optional[int] = None,
                            idle_limit: int = 1) -> int:
        """Pass until quiescent (or ``max_passes``); returns the number
        of passes taken, counting the final idle pass — the historical
        contract of every loop this replaces."""
        detector = QuiescenceDetector(idle_limit)
        taken = 0
        while taken < max_passes:
            taken += 1
            if detector.observe(self.pass_once(quantum)):
                break
        return taken

    def run_until_finished(self, max_passes: int = 1_000_000,
                           quantum: Optional[int] = None) -> int:
        """Pass until every unit reports finished; raises
        :class:`SchedulerStall` naming the stuck units otherwise."""
        taken = 0
        while taken < max_passes:
            taken += 1
            if self.pass_once(quantum).finished:
                return taken
        stuck = [rec.name for rec in self._records if not rec.unit.finished]
        raise SchedulerStall(self.name, stuck, max_passes)

    # -- introspection ------------------------------------------------------
    def starvation_ages(self) -> Dict[str, int]:
        """Passes since each live, unfinished unit last ran."""
        return {rec.name: self.passes - rec.last_run_pass
                for rec in self._records if not rec.unit.finished}

    def worst_starvation(self) -> int:
        """The worst gap (in passes) any unit has ever waited between
        consecutive runs — the starvation tail the benchmark reports."""
        current = self.starvation_ages().values()
        historical = (rec.worst_starvation for rec in self._records)
        return max(itertools.chain(historical, current), default=0)

    def stats(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "policy": self.policy.name,
            "passes": self.passes,
            "units": len(self._records),
            "live_units": self.live_units,
            "decisions": dict(self.decisions),
            "worst_starvation": self.worst_starvation(),
            "per_unit": {
                rec.name: {
                    "runs": rec.runs,
                    "busy_runs": rec.busy_runs,
                    "weight": rec.weight,
                    "worst_starvation": rec.worst_starvation,
                }
                for rec in self._records
            },
        }

    # -- telemetry ----------------------------------------------------------
    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        if reg is None:
            return
        label = (self.name, self.policy.name)
        reg.counter("tcq_sched_passes_total",
                    "Scheduling passes per scheduler",
                    ("sched", "policy"), collected=True) \
            .labels(*label).set_total(self.passes)
        decisions = reg.counter(
            "tcq_sched_decisions_total",
            "Per-policy scheduling decisions (runs, skips, overrides)",
            ("sched", "policy", "decision"), collected=True)
        for kind, count in self.decisions.items():
            decisions.labels(self.name, self.policy.name, kind) \
                .set_total(count)
        live = [rec for rec in self._records if not rec.unit.finished]
        reg.gauge("tcq_sched_units", "Registered schedulable units",
                  ("sched",), collected=True).labels(self.name) \
            .set(len(self._records))
        reg.gauge("tcq_sched_ready_units",
                  "Ready-set occupancy: live units reporting ready work",
                  ("sched",), collected=True).labels(self.name) \
            .set(sum(1 for rec in live if rec.is_ready()))
        ages = self.starvation_ages()
        reg.gauge("tcq_sched_starvation_age_max",
                  "Oldest live unit's passes-since-last-run",
                  ("sched",), collected=True).labels(self.name) \
            .set(max(ages.values(), default=0))
        reg.gauge("tcq_sched_starvation_tail",
                  "Worst run-to-run gap any unit has experienced",
                  ("sched",), collected=True).labels(self.name) \
            .set(self.worst_starvation())
        if self.quantum_controller is not None:
            quanta = reg.gauge(
                "tcq_sched_quantum",
                "Current adaptive quantum per unit (§4.3 trajectory)",
                ("sched", "unit"), collected=True)
            for unit, q in self.quantum_controller.current_quanta().items():
                quanta.labels(self.name, unit).set(q)
            reg.counter("tcq_sched_quantum_adjustments_total",
                        "Adaptive quantum changes", ("sched",),
                        collected=True).labels(self.name).set_total(
                self.quantum_controller.adjustments)

    def __repr__(self) -> str:
        return (f"Scheduler({self.name}, policy={self.policy.name}, "
                f"{len(self._records)} units)")


def drive(step: Any, max_passes: int = 1_000_000,
          idle_limit: int = 1) -> int:
    """Drive a bare step callable to quiescence with the shared
    detector; returns passes taken (counting the final idle pass).

    The escape hatch for components that keep their own step function
    but should share the one idle protocol (the server facade, legacy
    benchmarks).
    """
    detector = QuiescenceDetector(idle_limit)
    taken = 0
    while taken < max_passes:
        taken += 1
        if detector.observe(coerce_step_result(step())):
            break
    return taken
