"""Adaptive quantum control: "Adapting Adaptivity" (§4.3) as a
scheduler-level knob.

The paper frames batch/quantum sizing as a runtime control problem:
"when change is slow, or selectivity constant, many tuples should be
routed to large, fixed sequences of operators; when change is fast ...
small groups of tuples should be routed to individually scheduled
operators."  :class:`~repro.core.adaptivity.AdaptivityController` turns
that knob for one eddy it owns; :class:`AdaptiveQuantumController`
generalises the same policy to *any* scheduled unit that exposes a
``selectivity_sample()`` hint (eddies, eddy-backed Dispatch Units).

Per unit, the controller keeps the last selectivity sample and a
current quantum.  Every ``check_every`` runs it measures drift (the
max absolute per-operator selectivity delta, shared with the eddy
controller via :func:`repro.monitor.stats.sample_drift`):

* drift above ``drift_threshold``  → shrink the quantum (÷ grow_factor),
  restoring per-tuple adaptivity while the workload shifts;
* drift below threshold × ``GROW_HYSTERESIS`` → grow it (× grow_factor),
  amortising scheduling overhead while things are stable;
* in between → hold (dead band against estimator noise).

When a unit also exposes ``apply_quantum(n)`` the scheduler pushes the
new quantum into the unit's own batching machinery — for eddies that
rewrites the :class:`~repro.core.routing.BatchingDirective`, so the
knob reaches the routing loop, not just the outer scheduler call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple as TypingTuple

from repro.errors import PlanError
from repro.monitor.stats import sample_drift


class _UnitQuantumState:
    __slots__ = ("quantum", "last_sample", "runs_since_check", "trajectory")

    def __init__(self, quantum: int):
        self.quantum = quantum
        self.last_sample: Optional[Dict[str, float]] = None
        self.runs_since_check = 0
        #: (total runs at adjustment, new quantum, drift) history.
        self.trajectory: List[TypingTuple[int, int, float]] = []


class AdaptiveQuantumController:
    """Per-unit quantum adaptation from observed selectivity drift."""

    #: grow only when drift falls below threshold * GROW_HYSTERESIS —
    #: same dead band as the eddy-local controller.
    GROW_HYSTERESIS = 0.5

    def __init__(self, start_quantum: int = 16, min_quantum: int = 1,
                 max_quantum: int = 512, check_every: int = 8,
                 drift_threshold: float = 0.15, grow_factor: int = 2):
        if min_quantum < 1 or max_quantum < min_quantum:
            raise PlanError("need 1 <= min_quantum <= max_quantum")
        if not min_quantum <= start_quantum <= max_quantum:
            raise PlanError("start_quantum must lie in [min, max]")
        if grow_factor < 2:
            raise PlanError("grow_factor must be >= 2")
        if check_every < 1:
            raise PlanError("check_every must be >= 1")
        self.start_quantum = start_quantum
        self.min_quantum = min_quantum
        self.max_quantum = max_quantum
        self.check_every = check_every
        self.drift_threshold = drift_threshold
        self.grow_factor = grow_factor
        self._units: Dict[str, _UnitQuantumState] = {}
        self.checks = 0
        self.adjustments = 0
        self.runs = 0

    # -- scheduler hooks ----------------------------------------------------
    def quantum_for(self, name: str, base: Optional[int] = None) -> int:
        """The unit's current adaptive quantum (created on first use)."""
        state = self._units.get(name)
        if state is None:
            start = self.start_quantum if base is None else \
                max(self.min_quantum, min(self.max_quantum, base))
            state = self._units[name] = _UnitQuantumState(start)
        return state.quantum

    def after_run(self, name: str,
                  sample: Optional[Dict[str, float]]) -> Optional[int]:
        """Feed one run's selectivity sample; returns the new quantum
        when an adjustment fires, else None."""
        self.runs += 1
        if sample is None:
            return None
        state = self._units.get(name)
        if state is None:
            state = self._units[name] = _UnitQuantumState(self.start_quantum)
        state.runs_since_check += 1
        if state.runs_since_check < self.check_every:
            return None
        state.runs_since_check = 0
        return self._check(state, sample)

    def _check(self, state: _UnitQuantumState,
               sample: Dict[str, float]) -> Optional[int]:
        self.checks += 1
        drift = None if state.last_sample is None else \
            sample_drift(state.last_sample, sample)
        state.last_sample = dict(sample)
        if drift is None:
            return None
        if drift > self.drift_threshold:
            target = max(self.min_quantum, state.quantum // self.grow_factor)
        elif drift < self.drift_threshold * self.GROW_HYSTERESIS:
            target = min(self.max_quantum, state.quantum * self.grow_factor)
        else:
            return None          # dead band: hold
        if target == state.quantum:
            return None
        state.quantum = target
        self.adjustments += 1
        state.trajectory.append((self.runs, target, drift))
        return target

    def forget(self, name: str) -> None:
        self._units.pop(name, None)

    # -- introspection ------------------------------------------------------
    def trajectory(self, name: str) -> List[TypingTuple[int, int, float]]:
        state = self._units.get(name)
        return list(state.trajectory) if state else []

    def current_quanta(self) -> Dict[str, int]:
        return {name: st.quantum for name, st in self._units.items()}

    def stats(self) -> Dict[str, object]:
        return {
            "checks": self.checks,
            "adjustments": self.adjustments,
            "runs": self.runs,
            "quanta": self.current_quanta(),
        }
