"""The Schedulable protocol: the one contract every run loop speaks.

TelegraphCQ's executor story (Section 4.2.2) is about hosting many
heterogeneous units of work — Fjord modules, whole dataflows, Dispatch
Units, eddies, windowed-query states — under schedulers that provide
"adaptivity at minimal overhead".  Before this module existed the repo
had four hand-rolled loops with two progress vocabularies (a
:class:`StepResult` here, a bare ``bool`` there).  Everything now agrees
on one tiny surface:

* ``run_once(quantum)`` — do a bounded, non-preemptive quantum of work
  and return a :class:`StepResult`;
* ``ready()`` — a *cheap* hint: could ``run_once`` plausibly make
  progress right now?  Schedulers use it for idle detection, starvation
  accounting, and (in the pressure-aware policy) to skip pointless
  quanta; round-robin ignores it so behaviour stays bit-compatible with
  the historical loops;
* ``finished`` — the unit has reached end-of-stream / quiescence and
  must never be scheduled again;
* ``name`` — stable identity for telemetry and policy state.

Optional extensions, discovered by duck typing (helpers below):

* ``pressure()`` — occupancy of the unit's *downstream* queues in
  [0, 1]; 1.0 means backpressured (the pressure-aware policy skips it);
* ``selectivity_sample()`` — a ``{operator: selectivity}`` dict for the
  §4.3 adaptive-quantum controller, or None;
* ``apply_quantum(n)`` — push an adapted quantum into the unit's own
  batching machinery (eddies rewrite their ``BatchingDirective``).

The protocol is structural: :class:`~repro.fjords.module.Module`,
:class:`~repro.fjords.fjord.Fjord`,
:class:`~repro.core.executor.DispatchUnit`, eddies, Juggle, and the
server's windowed-query states all satisfy it without inheriting from
anything in this package.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional


class StepResult:
    """What a schedulable unit accomplished in one scheduling quantum.

    Truthiness equals :attr:`worked`, so legacy call sites that treated
    the old boolean step protocols as conditions keep working unchanged
    (``if fjord.step(): ...``).
    """

    __slots__ = ("worked", "finished")

    def __init__(self, worked: bool, finished: bool = False):
        self.worked = worked        # did the unit make progress?
        self.finished = finished    # has it emitted EOS / gone quiescent?

    IDLE: "StepResult"
    BUSY: "StepResult"
    DONE: "StepResult"

    def __bool__(self) -> bool:
        return self.worked

    def __repr__(self) -> str:
        state = "done" if self.finished else ("busy" if self.worked else "idle")
        return f"StepResult({state})"


StepResult.IDLE = StepResult(False)
StepResult.BUSY = StepResult(True)
StepResult.DONE = StepResult(True, finished=True)


def coerce_step_result(value: Any) -> StepResult:
    """Normalise a unit's return value to a :class:`StepResult`.

    Legacy step callables return a bare bool; ``None`` (a step that
    reports nothing) counts as idle.
    """
    if isinstance(value, StepResult):
        return value
    if value is None:
        return StepResult.IDLE
    return StepResult.BUSY if value else StepResult.IDLE


def unit_ready(unit: Any) -> bool:
    """The ``ready()`` hint, defaulting to True for units without one
    (a unit that cannot say must be polled)."""
    probe = getattr(unit, "ready", None)
    if probe is None:
        return True
    return bool(probe())


def unit_pressure(unit: Any) -> float:
    """The downstream-occupancy hint in [0, 1]; 0.0 when absent."""
    probe = getattr(unit, "pressure", None)
    if probe is None:
        return 0.0
    return float(probe())


def unit_selectivity_sample(unit: Any) -> Optional[Dict[str, float]]:
    """The §4.3 selectivity sample, or None for units without one."""
    probe = getattr(unit, "selectivity_sample", None)
    if probe is None:
        return None
    return probe()


class Schedulable:
    """Abstract base documenting the protocol (satisfaction is
    structural — subclassing is optional)."""

    name: str = ""

    @property
    def finished(self) -> bool:
        raise NotImplementedError

    def run_once(self, quantum: Optional[int] = None) -> StepResult:
        raise NotImplementedError

    def ready(self) -> bool:
        return True


class FunctionUnit(Schedulable):
    """Adapt a bare step callable into a Schedulable.

    ``step(quantum)`` may return a :class:`StepResult` or a bool;
    ``is_finished`` / ``is_ready`` are optional zero-argument hints.
    Used to fold legacy drive loops (Flux drain, cluster ticks) into the
    unified scheduler without rewriting their internals.
    """

    def __init__(self, name: str,
                 step: Callable[[Optional[int]], Any],
                 is_finished: Callable[[], bool] = lambda: False,
                 is_ready: Optional[Callable[[], bool]] = None):
        self.name = name
        self._step = step
        self._is_finished = is_finished
        self._is_ready = is_ready

    @property
    def finished(self) -> bool:
        return bool(self._is_finished())

    def run_once(self, quantum: Optional[int] = None) -> StepResult:
        if self.finished:
            return StepResult.DONE
        result = coerce_step_result(self._step(quantum))
        if self.finished and not result.finished:
            return StepResult(result.worked, finished=True)
        return result

    def ready(self) -> bool:
        if self._is_ready is None:
            return True
        return bool(self._is_ready())

    def __repr__(self) -> str:
        return f"FunctionUnit({self.name})"
