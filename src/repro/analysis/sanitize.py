"""REPRO_SANITIZE=1: the runtime half of the TCQ7xx guard.

Static analysis claims two things it cannot fully prove: that every
value crossing the Flux process boundary survives pickling (TCQ702) and
that nothing on the event-loop thread blocks (TCQ701).  With
``REPRO_SANITIZE=1`` in the environment those claims are *checked* at
runtime:

* :func:`assert_picklable` round-trips every snapshot / command payload
  through pickle at the boundary, so a silently-broken failover
  snapshot fails loudly at the send site instead of at a failover weeks
  later;
* :class:`LoopWatchdog` times every scheduler pass the net service
  drives on the event-loop thread and counts passes that exceed the
  stall budget, published as ``tcq_sanitize_loop_stalls_total``.

Both are no-ops (zero overhead beyond one ``if``) when the variable is
unset, so production paths pay nothing.  Tier-2 tests flip the variable
and assert the hooks fire.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, List, Optional, Tuple

from repro.monitor.clock import now

__all__ = ["SanitizeError", "enabled", "assert_picklable", "LoopWatchdog"]

_ENV_VAR = "REPRO_SANITIZE"


class SanitizeError(AssertionError):
    """A runtime sanitizer invariant failed (only under REPRO_SANITIZE=1)."""


def enabled() -> bool:
    """True when the current environment opts into sanitizer checks.

    Read per call, not cached at import: tests flip the variable
    mid-process.
    """
    return os.environ.get(_ENV_VAR, "") not in ("", "0")


def assert_picklable(obj: Any, what: str = "payload") -> Any:
    """Round-trip *obj* through pickle when sanitizing; returns *obj*.

    The *loads* half matters: an object can pickle fine and still fail
    to rebuild (``__reduce__`` pointing at a local, a class moved out
    of module scope), and only a round-trip catches that before the
    bytes cross the process boundary.
    """
    if not enabled():
        return obj
    try:
        pickle.loads(pickle.dumps(obj))
    except Exception as exc:
        raise SanitizeError(
            f"{what} failed the pickle round-trip under REPRO_SANITIZE: "
            f"{type(exc).__name__}: {exc}") from exc
    return obj


class LoopWatchdog:
    """Times event-loop work units and counts budget overruns.

    Usage (the net service wraps each scheduler pass)::

        wd = LoopWatchdog(budget_s=0.1, name="net")
        with wd:
            scheduler.pass_once()

    Stalls are recorded in a bounded ring (the most recent
    ``keep`` overruns, each ``(duration_s, at)``) and counted in the
    ``tcq_sanitize_loop_stalls_total`` telemetry counter so tier-2 runs
    can assert the loop stayed responsive.
    """

    def __init__(self, budget_s: float = 0.1, name: str = "loop",
                 keep: int = 32):
        self.budget_s = budget_s
        self.name = name
        self.keep = keep
        self.stalls: List[Tuple[float, float]] = []
        self.passes = 0
        self._stall_total = 0
        self._t0: Optional[float] = None
        try:
            from repro.monitor.telemetry import get_registry
            self._counter = get_registry().counter(
                "tcq_sanitize_loop_stalls_total",
                "scheduler passes that exceeded the sanitizer stall budget")
        except Exception:
            self._counter = None

    def __enter__(self) -> "LoopWatchdog":
        self._t0 = now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t0, self._t0 = self._t0, None
        if t0 is None:
            return
        self.passes += 1
        elapsed = now() - t0
        if elapsed > self.budget_s:
            self._stall_total += 1
            self.stalls.append((elapsed, now()))
            if len(self.stalls) > self.keep:
                self.stalls.pop(0)
            if self._counter is not None:
                self._counter.inc()

    @property
    def stall_count(self) -> int:
        """Total overruns observed (the ring keeps only the newest)."""
        return self._stall_total
