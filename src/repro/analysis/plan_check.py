"""tcqcheck target 1: the static plan verifier.

TelegraphCQ admits ad-hoc continuous queries into a *shared*,
adaptively-routed dataflow, so one malformed or unsatisfiable query
degrades every co-resident query — and because the eddy picks operator
order per tuple, there is no static plan whose construction would have
caught the error.  This module runs the checks a plan constructor would
have run, *before admission*:

* per-column interval analysis over the conjunction's boolean factors
  (contradictions ``TCQ101``, duplicates ``TCQ201``, subsumption
  ``TCQ202``, trivial self-comparisons ``TCQ203``);
* equality-chain propagation across join columns (``TCQ102``);
* join-graph connectivity for continuous queries — a stream with no
  equijoin path to the rest of the footprint has no SteM pair and no
  probe access path, so composite results can never be produced
  (``TCQ103``);
* window-clause simulation — loops that never enter, windows that are
  empty at every iteration, non-progressing updates, and slides that
  exceed the range so tuples fall in gaps (``TCQ105``, ``TCQ106``,
  ``TCQ206``);
* admission-context checks against the running server — footprint-class
  bridging (engine merges, ``TCQ204``) and lineage/ready-bit crowding
  (``TCQ205``).

Everything returns :class:`~repro.analysis.report.Diagnostic` lists;
:meth:`repro.core.engine.TelegraphCQServer.submit` rejects on errors
(``allow_unsafe=True`` bypasses) and surfaces warnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import (Any, Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple as TypingTuple)

from repro.analysis.report import Diagnostic, DiagnosticReport, NO_SPAN
from repro.errors import ParseError, QueryError
from repro.query.ast import ForLoopClause, QuerySpec
from repro.query.catalog import Catalog
from repro.query.predicates import (ColumnComparison, Comparison, Predicate)

#: Default ceiling for lineage/ready-bit width warnings.  Query and
#: operator bitmaps are plain Python integers, so nothing *breaks* past
#: this — but every mask test walks the full width, so a crowded class
#: is a per-tuple cost paid by all co-resident queries.
DEFAULT_LINEAGE_CAPACITY = 64

#: How many loop iterations the window simulator evaluates.
_MAX_SIM_ITERATIONS = 512


@dataclass
class AdmissionContext:
    """What the plan verifier knows about the running server.

    ``footprint_classes`` holds, per live shared engine, the set of
    streams it reads; ``class_query_counts`` the number of standing
    queries in each (parallel lists).
    """

    footprint_classes: Sequence[FrozenSet[str]] = ()
    class_query_counts: Sequence[int] = ()
    lineage_capacity: int = DEFAULT_LINEAGE_CAPACITY


# -- value typing -------------------------------------------------------------

def _type_class(value: Any) -> str:
    if isinstance(value, bool):
        return "number"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    return "other"


def _comparable(a: Any, b: Any) -> bool:
    ta, tb = _type_class(a), _type_class(b)
    return ta == tb and ta != "other"


def _span_of(factor: Predicate) -> TypingTuple[int, int]:
    span = getattr(factor, "span", None)
    return span if span else NO_SPAN


# -- per-column interval analysis ---------------------------------------------

class _ColumnState:
    """Accumulated constraints on one column from conjunctive factors."""

    __slots__ = ("column", "lo", "lo_strict", "lo_factor",
                 "hi", "hi_strict", "hi_factor", "eq", "eq_factor", "neq")

    def __init__(self, column: str):
        self.column = column
        self.lo: Any = None
        self.lo_strict = False
        self.lo_factor: Optional[Comparison] = None
        self.hi: Any = None
        self.hi_strict = False
        self.hi_factor: Optional[Comparison] = None
        self.eq: Any = None
        self.eq_factor: Optional[Comparison] = None
        self.neq: List[Comparison] = []

    def allows(self, value: Any) -> bool:
        """Does ``value`` satisfy every range constraint seen so far?"""
        if self.lo is not None and _comparable(value, self.lo):
            if value < self.lo or (value == self.lo and self.lo_strict):
                return False
        if self.hi is not None and _comparable(value, self.hi):
            if value > self.hi or (value == self.hi and self.hi_strict):
                return False
        return True


def _conflict(source: str, factor: Predicate, other: Optional[Predicate],
              column: str, detail: str) -> Diagnostic:
    because = f" (with {other!r})" if other is not None else ""
    return Diagnostic(
        "TCQ101",
        f"contradictory constraints on {column!r}: {factor!r}{because} "
        f"{detail}",
        span=_span_of(factor), source=source,
        hint="the conjunction is unsatisfiable; no tuple can ever match")


def check_predicate(predicate: Predicate, source: str = "",
                    out: Optional[List[Diagnostic]] = None
                    ) -> List[Diagnostic]:
    """Analyse the top-level conjunction of ``predicate``.

    Factors nested inside OR / NOT are left alone (soundness: a
    disjunct being impossible does not make the query impossible).
    """
    diags: List[Diagnostic] = out if out is not None else []
    factors = predicate.conjuncts()
    singles = [f for f in factors if isinstance(f, Comparison)]
    columns = [f for f in factors if isinstance(f, ColumnComparison)]

    # Exact duplicates first, so the interval pass can skip repeats.
    seen: Dict[Any, Predicate] = {}
    deduped: List[Comparison] = []
    for f in singles:
        key = (f.column, f.op, f.value)
        if key in seen:
            diags.append(Diagnostic(
                "TCQ201",
                f"duplicate predicate factor {f!r}; CACQ folds it into "
                f"one grouped-filter entry",
                span=_span_of(f), source=source))
        else:
            seen[key] = f
            deduped.append(f)
    for f in columns:
        key = (f.left, f.op, f.right)
        if key in seen:
            diags.append(Diagnostic(
                "TCQ201", f"duplicate join factor {f!r}",
                span=_span_of(f), source=source))
        seen[key] = f

    states = _interval_pass(deduped, source, diags)
    _self_comparison_pass(columns, source, diags)
    _equality_chain_pass(columns, states, source, diags)
    return diags


def _interval_pass(singles: Sequence[Comparison], source: str,
                   diags: List[Diagnostic]) -> Dict[str, _ColumnState]:
    states: Dict[str, _ColumnState] = {}
    for f in singles:
        st = states.get(f.column)
        if st is None:
            st = states[f.column] = _ColumnState(f.column)
        op, v = f.op, f.value
        if op == "==":
            _apply_eq(st, f, v, source, diags)
        elif op == "!=":
            if st.eq is not None and st.eq == v and _comparable(st.eq, v):
                diags.append(_conflict(source, f, st.eq_factor, f.column,
                                       "excludes the pinned value"))
            else:
                st.neq.append(f)
        elif op in (">", ">="):
            _apply_lo(st, f, v, op == ">", source, diags)
        elif op in ("<", "<="):
            _apply_hi(st, f, v, op == "<", source, diags)
    return states


def _apply_eq(st: _ColumnState, f: Comparison, v: Any, source: str,
              diags: List[Diagnostic]) -> None:
    if st.eq_factor is not None and _comparable(st.eq, v) and st.eq != v:
        diags.append(_conflict(source, f, st.eq_factor, st.column,
                               "pins a second, different value"))
        return
    for nf in st.neq:
        if _comparable(nf.value, v) and nf.value == v:
            diags.append(_conflict(source, f, nf, st.column,
                                   "pins an excluded value"))
            return
    if not st.allows(v):
        bound = st.lo_factor if (st.lo is not None
                                 and not st.allows(v)) else st.hi_factor
        # Report against whichever bound actually rejects the value.
        culprit = st.lo_factor
        if st.hi is not None and _comparable(v, st.hi) and \
                (v > st.hi or (v == st.hi and st.hi_strict)):
            culprit = st.hi_factor
        diags.append(_conflict(source, f, culprit or bound, st.column,
                               "pins a value outside the allowed range"))
        return
    if st.eq_factor is None:
        st.eq, st.eq_factor = v, f
        # A pin makes existing range bounds redundant.
        for bf in (st.lo_factor, st.hi_factor):
            if bf is not None:
                diags.append(Diagnostic(
                    "TCQ202",
                    f"factor {bf!r} is subsumed by the equality {f!r}",
                    span=_span_of(bf), source=source))


def _apply_lo(st: _ColumnState, f: Comparison, v: Any, strict: bool,
              source: str, diags: List[Diagnostic]) -> None:
    if st.eq_factor is not None and _comparable(st.eq, v):
        ok = st.eq > v or (st.eq == v and not strict)
        if ok:
            diags.append(Diagnostic(
                "TCQ202",
                f"factor {f!r} is subsumed by the equality {st.eq_factor!r}",
                span=_span_of(f), source=source))
        else:
            diags.append(_conflict(source, f, st.eq_factor, st.column,
                                   "excludes the pinned value"))
        return
    if st.lo is not None and _comparable(v, st.lo):
        # Keep the tighter bound; the looser one is subsumed.
        tighter = v > st.lo or (v == st.lo and strict and not st.lo_strict)
        weaker = f if not tighter else st.lo_factor
        if (v, strict) != (st.lo, st.lo_strict):
            diags.append(Diagnostic(
                "TCQ202",
                f"factor {weaker!r} is subsumed by a tighter bound on "
                f"{st.column!r}",
                span=_span_of(weaker), source=source))
        if not tighter:
            return
    elif st.lo is not None:
        return                       # incomparable types; keep first bound
    st.lo, st.lo_strict, st.lo_factor = v, strict, f
    _check_range(st, f, source, diags)


def _apply_hi(st: _ColumnState, f: Comparison, v: Any, strict: bool,
              source: str, diags: List[Diagnostic]) -> None:
    if st.eq_factor is not None and _comparable(st.eq, v):
        ok = st.eq < v or (st.eq == v and not strict)
        if ok:
            diags.append(Diagnostic(
                "TCQ202",
                f"factor {f!r} is subsumed by the equality {st.eq_factor!r}",
                span=_span_of(f), source=source))
        else:
            diags.append(_conflict(source, f, st.eq_factor, st.column,
                                   "excludes the pinned value"))
        return
    if st.hi is not None and _comparable(v, st.hi):
        tighter = v < st.hi or (v == st.hi and strict and not st.hi_strict)
        weaker = f if not tighter else st.hi_factor
        if (v, strict) != (st.hi, st.hi_strict):
            diags.append(Diagnostic(
                "TCQ202",
                f"factor {weaker!r} is subsumed by a tighter bound on "
                f"{st.column!r}",
                span=_span_of(weaker), source=source))
        if not tighter:
            return
    elif st.hi is not None:
        return
    st.hi, st.hi_strict, st.hi_factor = v, strict, f
    _check_range(st, f, source, diags)


def _check_range(st: _ColumnState, newest: Comparison, source: str,
                 diags: List[Diagnostic]) -> None:
    if st.lo is None or st.hi is None or not _comparable(st.lo, st.hi):
        return
    empty = st.lo > st.hi or (st.lo == st.hi
                              and (st.lo_strict or st.hi_strict))
    if empty:
        other = st.hi_factor if newest is st.lo_factor else st.lo_factor
        diags.append(_conflict(source, newest, other, st.column,
                               "leaves an empty range"))


def _self_comparison_pass(columns: Sequence[ColumnComparison], source: str,
                          diags: List[Diagnostic]) -> None:
    for f in columns:
        if f.left != f.right:
            continue
        if f.op in ("==", "<=", ">="):
            diags.append(Diagnostic(
                "TCQ203",
                f"self-comparison {f!r} is always true; it filters nothing",
                span=_span_of(f), source=source))
        else:
            diags.append(_conflict(
                source, f, None, f.left,
                "compares a column against itself and can never hold"))


def _equality_chain_pass(columns: Sequence[ColumnComparison],
                         states: Dict[str, _ColumnState], source: str,
                         diags: List[Diagnostic]) -> None:
    """Union-find over ``a.x == b.y`` chains; propagate pinned constants
    and range bounds across each chain."""
    parent: Dict[str, str] = {}

    def find(c: str) -> str:
        parent.setdefault(c, c)
        root = c
        while parent[root] != root:
            root = parent[root]
        while parent[c] != root:
            parent[c], c = root, parent[c]
        return root

    equalities = [f for f in columns
                  if f.op == "==" and f.left != f.right]
    for f in equalities:
        parent[find(f.left)] = find(f.right)
    chains: Dict[str, List[str]] = {}
    for c in parent:
        chains.setdefault(find(c), []).append(c)
    for members in chains.values():
        if len(members) < 2:
            continue
        pinned: Optional[TypingTuple[Any, Comparison]] = None
        for c in sorted(members):
            st = states.get(c)
            if st is None or st.eq_factor is None:
                continue
            if pinned is None:
                pinned = (st.eq, st.eq_factor)
            elif _comparable(pinned[0], st.eq) and pinned[0] != st.eq:
                diags.append(Diagnostic(
                    "TCQ102",
                    f"impossible equality chain: {pinned[1]!r} and "
                    f"{st.eq_factor!r} pin columns that are joined equal "
                    f"to different values",
                    span=_span_of(st.eq_factor), source=source,
                    hint="the join can never produce a match"))
        if pinned is None:
            continue
        value = pinned[0]
        for c in sorted(members):
            st = states.get(c)
            if st is None or st.eq_factor is not None:
                continue
            if not st.allows(value):
                diags.append(Diagnostic(
                    "TCQ102",
                    f"impossible equality chain: {pinned[1]!r} forces "
                    f"{c!r} to {value!r}, outside its allowed range",
                    span=_span_of(pinned[1]), source=source,
                    hint="the join can never produce a match"))


# -- join-graph connectivity ---------------------------------------------------

def check_join_graph(bindings: Sequence[TypingTuple[str, str]],
                     predicate: Predicate, spec: Optional[QuerySpec] = None,
                     source: str = "") -> List[Diagnostic]:
    """Continuous multi-stream queries need an equijoin path from every
    stream to the rest of the footprint: CACQ builds one SteM per side
    of each equijoin factor, and composites are only produced by probes.
    A disconnected stream has no SteM pair and no probe access path —
    the query can never emit a multi-source result."""
    diags: List[Diagnostic] = []
    names = [b for b, _o in bindings]
    if len(names) < 2:
        return diags
    adjacency: Dict[str, Set[str]] = {n: set() for n in names}
    for f in predicate.conjuncts():
        if not isinstance(f, ColumnComparison) or f.op != "==":
            continue
        srcs = [c.rsplit(".", 1)[0] for c in (f.left, f.right) if "." in c]
        if len(srcs) == 2 and srcs[0] != srcs[1] and \
                all(s in adjacency for s in srcs):
            adjacency[srcs[0]].add(srcs[1])
            adjacency[srcs[1]].add(srcs[0])
    reached = {names[0]}
    frontier = [names[0]]
    while frontier:
        for nxt in adjacency[frontier.pop()]:
            if nxt not in reached:
                reached.add(nxt)
                frontier.append(nxt)
    spans: Dict[str, TypingTuple[int, int]] = {}
    if spec is not None:
        for s in spec.sources:
            spans[s.binding] = s.span
    for name in names:
        if name in reached:
            continue
        diags.append(Diagnostic(
            "TCQ103",
            f"stream {name!r} has no equijoin path to the rest of the "
            f"query; no SteM pair will be built and no probe can reach it",
            span=spans.get(name, NO_SPAN), source=source,
            hint="add an equality join factor linking it, or query it "
                 "separately"))
    return diags


# -- window-clause simulation --------------------------------------------------

class _WindowSim:
    """Observations from simulating one for-loop under one environment."""

    __slots__ = ("entered", "stuck", "iterations", "widths", "gaps")

    def __init__(self) -> None:
        self.entered = False
        self.stuck = False
        self.iterations = 0
        #: per-clause-index list of (lo, hi) pairs
        self.widths: Dict[int, List[TypingTuple[int, int]]] = {}
        self.gaps: Set[int] = set()


def _simulate_loop(clause: ForLoopClause,
                   env: Dict[str, int]) -> Optional[_WindowSim]:
    sim = _WindowSim()
    try:
        init_fn = clause.initial.compile()
        left_fn = clause.condition[0].compile()
        right_fn = clause.condition[2].compile()
        op = clause.condition[1]
        update_op, update_expr = clause.update
        update_fn = update_expr.compile()
        window_fns = [(w.left.compile(), w.right.compile())
                      for w in clause.windows]
        from repro.query.optimizer import _CONDITIONS
        cmp_fn = _CONDITIONS[op]
        var = clause.variable

        def env_at(t: Any) -> Dict[str, int]:
            e = dict(env)
            e[var] = t
            return e

        t = init_fn(dict(env))
        for _ in range(_MAX_SIM_ITERATIONS):
            e = env_at(t)
            if not cmp_fn(left_fn(e), right_fn(e)):
                break
            sim.entered = True
            sim.iterations += 1
            for i, (lf, rf) in enumerate(window_fns):
                lo, hi = lf(e), rf(e)
                history = sim.widths.setdefault(i, [])
                if history:
                    prev_lo, prev_hi = history[-1]
                    if lo > prev_lo and lo > prev_hi + 1:
                        sim.gaps.add(i)
                history.append((lo, hi))
            delta = update_fn(e)
            if update_op == "+=":
                nxt = t + delta
            elif update_op == "-=":
                nxt = t - delta
            else:
                nxt = delta
            if nxt == t:
                sim.stuck = True
                break
            t = nxt
    except (QueryError, ArithmeticError, TypeError):
        return None                      # dynamic failure; not our call
    return sim


def check_windows(spec: QuerySpec, source: str = "") -> List[Diagnostic]:
    """Statically evaluate the for-loop/WindowIs clauses.

    Free variables (``ST``) are tried at two well-separated values; a
    problem is only reported when it shows under *every* trial, so
    translation-invariant specs are judged fairly."""
    clause = spec.for_loop
    if clause is None:
        return []
    diags: List[Diagnostic] = []
    free: Set[str] = set()
    for expr in (clause.initial, clause.condition[0], clause.condition[2],
                 clause.update[1]):
        free |= expr.variables()
    for w in clause.windows:
        free |= w.left.variables() | w.right.variables()
    free -= {clause.variable}
    if free:
        envs = [{v: 0 for v in free}, {v: 1000 for v in free}]
    else:
        envs = [{}]
    sims = [_simulate_loop(clause, env) for env in envs]
    sims = [s for s in sims if s is not None]
    if not sims:
        return diags
    if all(not s.entered for s in sims):
        diags.append(Diagnostic(
            "TCQ105",
            "for-loop condition is false at the initial value; no window "
            "ever fires",
            span=clause.span, source=source,
            hint="check the loop bounds against the initial value"))
        return diags
    if all(s.stuck for s in sims):
        diags.append(Diagnostic(
            "TCQ106",
            "for-loop update leaves the loop variable unchanged; the same "
            "window instant would be re-evaluated forever",
            span=clause.span, source=source,
            hint="make the update move the variable toward the exit "
                 "condition"))
        return diags
    for i, w in enumerate(clause.windows):
        per_env = [s.widths.get(i, []) for s in sims]
        if not all(per_env):
            continue
        if all(all(lo > hi for lo, hi in widths) for widths in per_env):
            diags.append(Diagnostic(
                "TCQ105",
                f"WindowIs({w.stream}, {w.left}, {w.right}) is empty "
                f"(left > right) at every iteration; the window can "
                f"never fire",
                span=w.span, source=source,
                hint="windows are inclusive [left, right]; swap or widen "
                     "the bounds"))
        elif all(i in s.gaps for s in sims):
            diags.append(Diagnostic(
                "TCQ206",
                f"WindowIs({w.stream}, {w.left}, {w.right}) slides "
                f"further than its range: consecutive windows leave gaps "
                f"no window ever covers",
                span=w.span, source=source,
                hint="tuples arriving in the gaps are invisible to this "
                     "query; widen the window or shrink the loop step"))
    return diags


# -- admission-context checks --------------------------------------------------

def check_admission(footprint: FrozenSet[str], predicate: Predicate,
                    context: AdmissionContext,
                    source: str = "") -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    touched = [i for i, cls in enumerate(context.footprint_classes)
               if cls & footprint]
    if len(touched) > 1:
        names = [" | ".join(sorted(context.footprint_classes[i]))
                 for i in touched]
        diags.append(Diagnostic(
            "TCQ204",
            f"query bridges {len(touched)} previously-independent query "
            f"classes ({'; '.join(names)}); their shared engines will be "
            f"merged and every resident query re-registered",
            source=source,
            hint="expect a one-time re-registration cost and a wider "
                 "shared lineage bitmap afterwards"))
    resident = sum(context.class_query_counts[i] for i in touched
                   if i < len(context.class_query_counts))
    if resident + 1 > context.lineage_capacity:
        diags.append(Diagnostic(
            "TCQ205",
            f"admitting this query puts {resident + 1} standing queries "
            f"in one shared class, past the advisory lineage capacity of "
            f"{context.lineage_capacity}; every tuple's lineage bitmap "
            f"check walks that width",
            source=source,
            hint="partition the workload across servers, or raise "
                 "lineage_capacity if the cost is acceptable"))
    n_factors = len(predicate.conjuncts())
    if n_factors > context.lineage_capacity:
        diags.append(Diagnostic(
            "TCQ205",
            f"query carries {n_factors} boolean factors; the per-tuple "
            f"ready/done bitmaps grow with factor count and this exceeds "
            f"the advisory capacity of {context.lineage_capacity}",
            source=source))
    return diags


# -- dataflow-graph reachability ----------------------------------------------

def check_flow_graph(nodes: Sequence[str],
                     edges: Iterable[TypingTuple[str, str]],
                     ingresses: Iterable[str],
                     egresses: Iterable[str]) -> List[Diagnostic]:
    """Generic operator-graph reachability: every node must be reachable
    from some ingress and must reach some egress (``TCQ104``)."""
    fwd: Dict[str, Set[str]] = {n: set() for n in nodes}
    rev: Dict[str, Set[str]] = {n: set() for n in nodes}
    for a, b in edges:
        fwd.setdefault(a, set()).add(b)
        rev.setdefault(b, set()).add(a)

    def closure(seeds: Iterable[str], graph: Dict[str, Set[str]]) -> Set[str]:
        reached = set()
        frontier = [s for s in seeds if s in graph]
        while frontier:
            node = frontier.pop()
            if node in reached:
                continue
            reached.add(node)
            frontier.extend(graph.get(node, ()))
        return reached

    from_ingress = closure(ingresses, fwd)
    to_egress = closure(egresses, rev)
    diags: List[Diagnostic] = []
    for n in nodes:
        if n not in from_ingress:
            diags.append(Diagnostic(
                "TCQ104",
                f"operator {n!r} is unreachable from any ingress; it can "
                f"never receive a tuple",
                hint="wire an input, or remove the operator"))
        elif n not in to_egress:
            diags.append(Diagnostic(
                "TCQ104",
                f"operator {n!r} cannot reach any egress; everything it "
                f"produces is dropped",
                hint="wire its output toward a sink, or remove it"))
    return diags


def check_fjord(fjord: Any) -> List[Diagnostic]:
    """Reachability over a :class:`repro.fjords.fjord.Fjord`'s wiring.

    Ingresses are modules with no input ports or with externally-fed
    queues (no producer inside the Fjord); egresses are modules with no
    output ports or queues no in-Fjord consumer pops."""
    producers: Dict[int, str] = {}
    consumers: Dict[int, str] = {}
    for m in fjord.modules:
        for q in m.outputs:
            if q is not None:
                producers[id(q)] = m.name
        for q in m.inputs:
            if q is not None:
                consumers[id(q)] = m.name
    edges: List[TypingTuple[str, str]] = []
    ingresses: List[str] = []
    egresses: List[str] = []
    for m in fjord.modules:
        ins = [q for q in m.inputs if q is not None]
        outs = [q for q in m.outputs if q is not None]
        # True sources/sinks declare arity 0; a module whose ports exist
        # but are all unbound is dangling, not an ingress/egress.
        if not m.inputs or any(id(q) not in producers for q in ins):
            ingresses.append(m.name)
        if not m.outputs or any(id(q) not in consumers for q in outs):
            egresses.append(m.name)
        for q in outs:
            consumer = consumers.get(id(q))
            if consumer is not None:
                edges.append((m.name, consumer))
    return check_flow_graph([m.name for m in fjord.modules], edges,
                            ingresses, egresses)


# -- entry points --------------------------------------------------------------

def check_spec(spec: QuerySpec, source: Optional[str] = None
               ) -> List[Diagnostic]:
    """Spec-level checks that need no catalog: predicate satisfiability
    and window-clause analysis (against the *unqualified* predicate)."""
    text = spec.text if source is None else source
    diags = check_predicate(spec.predicate, source=text)
    diags.extend(check_windows(spec, source=text))
    return diags


def check_compiled(compiled: Any, catalog: Optional[Catalog] = None,
                   context: Optional[AdmissionContext] = None
                   ) -> DiagnosticReport:
    """The full admission gate over an optimizer
    :class:`~repro.query.optimizer.CompiledQuery`."""
    spec: QuerySpec = compiled.spec
    text = spec.text
    diags = check_predicate(compiled.predicate, source=text)
    diags.extend(check_windows(spec, source=text))
    if compiled.kind == "continuous":
        diags.extend(check_join_graph(compiled.bindings, compiled.predicate,
                                      spec=spec, source=text))
    if context is not None:
        diags.extend(check_admission(compiled.footprint, compiled.predicate,
                                     context, source=text))
    return DiagnosticReport(diags)


def check_query(query: Any, catalog: Catalog,
                context: Optional[AdmissionContext] = None
                ) -> DiagnosticReport:
    """Parse + compile + verify; parse/compile failures become a
    ``TCQ100`` diagnostic instead of an exception (CLI ``CHECK``)."""
    from repro.query.optimizer import compile_query
    from repro.query.parser import parse
    text = query if isinstance(query, str) else getattr(query, "text", "")
    try:
        spec = parse(query) if isinstance(query, str) else query
        compiled = compile_query(spec, catalog)
    except ParseError as exc:
        span = (exc.position, exc.position + 1) if exc.position >= 0 \
            else NO_SPAN
        return DiagnosticReport([Diagnostic(
            "TCQ100", f"parse error: {exc}", span=span, source=text)])
    except QueryError as exc:
        return DiagnosticReport([Diagnostic(
            "TCQ100", f"compile error: {exc}", source=text)])
    return check_compiled(compiled, catalog, context)
