"""Inline suppression comments for tcqcheck findings.

One syntax serves every rule family::

    handle.ctrl.poll(0.005)  # tcq: allow[TCQ701] synchronous control RPC

The bracket lists one or more codes (comma separated) and the trailing
free text is a *required* justification — an allow without a reason is
ignored, which keeps "silence the linter" commits honest.  A suppression
binds to the physical line it sits on; for multi-line constructs put it
on the line the diagnostic points at (the ``def``/``class`` line for
function- and class-level findings).

The legacy per-rule syntax (``# tcqcheck: allow-<tag>``) remains valid
for the TCQ3xx–6xx linter rules and is handled in ``lint.py``; new code
should prefer the bracketed form, which works for every code including
the whole-program TCQ7xx family.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Suppressions", "parse_suppressions", "ALLOW_RE"]

ALLOW_RE = re.compile(
    r"#\s*tcq:\s*allow\[\s*([A-Z0-9,\s]+?)\s*\]\s*(\S.*)?$"
)


@dataclass
class _Allow:
    codes: frozenset
    reason: str
    used: int = 0


@dataclass
class Suppressions:
    """Per-file index of ``# tcq: allow[...]`` comments.

    ``is_suppressed(line, code)`` marks the allow as used; ``unused()``
    lets callers report stale suppressions if they want to.
    """

    by_line: dict = field(default_factory=dict)

    def is_suppressed(self, line: int, code: str) -> bool:
        allow = self.by_line.get(line)
        if allow is None or code not in allow.codes:
            return False
        allow.used += 1
        return True

    def covers(self, line: int, code: str) -> bool:
        """Like ``is_suppressed`` but without marking usage."""
        allow = self.by_line.get(line)
        return allow is not None and code in allow.codes

    @property
    def used_count(self) -> int:
        return sum(a.used for a in self.by_line.values())

    def unused(self):
        return [(line, sorted(a.codes), a.reason)
                for line, a in sorted(self.by_line.items()) if not a.used]


def parse_suppressions(source: str) -> Suppressions:
    """Scan *source* for allow comments; 1-based line -> allow record.

    Malformed allows (no reason text after the bracket) are dropped on
    purpose: a suppression must say why.
    """
    index: dict = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = ALLOW_RE.search(text)
        if not m:
            continue
        reason = (m.group(2) or "").strip()
        if not reason:
            continue
        codes = frozenset(
            c.strip() for c in m.group(1).split(",") if c.strip()
        )
        if codes:
            index[lineno] = _Allow(codes=codes, reason=reason)
    return Suppressions(by_line=index)
