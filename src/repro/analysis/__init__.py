"""tcqcheck: static analysis for the TelegraphCQ reproduction.

Two targets share one diagnostic vocabulary (:mod:`repro.analysis.report`):

* the **plan verifier** (:mod:`repro.analysis.plan_check`) runs at query
  admission — contradictory predicates, impossible equality chains,
  unpaired joins, dead windows, and shared-dataflow capacity hazards are
  caught *before* a query joins the shared eddy;
* the **invariant linter** (:mod:`repro.analysis.lint`) walks this
  codebase's own sources for conventions the machinery relies on —
  batch/per-tuple parity, telemetry naming, clock discipline,
  Schedulable conformance, bounded-buffer discipline.

Command line: ``python -m repro.analysis --self`` (lint the shipped
tree; the tier-1 gate), ``--codes`` (the diagnostic table), ``--query
'SELECT ...'`` (plan-check a query against an empty catalog), or any
list of paths to lint.
"""

from repro.analysis.lint import EXEMPT_TAGS, lint_paths, lint_source
from repro.analysis.plan_check import (AdmissionContext, check_admission,
                                       check_compiled, check_fjord,
                                       check_flow_graph, check_join_graph,
                                       check_predicate, check_query,
                                       check_spec, check_windows)
from repro.analysis.report import (CODES, Diagnostic, DiagnosticReport,
                                   ERROR, LINT, PlanCheckWarning, WARNING,
                                   render_codes_table, severity_of)

__all__ = [
    "AdmissionContext", "CODES", "Diagnostic", "DiagnosticReport",
    "ERROR", "EXEMPT_TAGS", "LINT", "PlanCheckWarning", "WARNING",
    "check_admission", "check_compiled", "check_fjord", "check_flow_graph",
    "check_join_graph", "check_predicate", "check_query", "check_spec",
    "check_windows", "lint_paths", "lint_source", "render_codes_table",
    "severity_of",
]
