"""tcqcheck: static analysis for the TelegraphCQ reproduction.

Three targets share one diagnostic vocabulary (:mod:`repro.analysis.report`):

* the **plan verifier** (:mod:`repro.analysis.plan_check`) runs at query
  admission — contradictory predicates, impossible equality chains,
  unpaired joins, dead windows, and shared-dataflow capacity hazards are
  caught *before* a query joins the shared eddy;
* the **invariant linter** (:mod:`repro.analysis.lint`) walks this
  codebase's own sources file-by-file for conventions the machinery
  relies on — batch/per-tuple parity, telemetry naming, clock
  discipline, Schedulable conformance, bounded-buffer discipline;
* the **whole-program guard** (:mod:`repro.analysis.guard`) parses the
  tree once into a project model (imports, symbols, a conservative call
  graph) and checks cross-module concurrency and process-boundary
  hazards — blocking calls on event-loop paths, unpicklable values
  crossing the Flux process boundary, shared mutable globals on engine
  paths (TCQ7xx).

Any finding can be suppressed in place with
``# tcq: allow[TCQ701] reason`` (:mod:`repro.analysis.suppress`); the
reason text is mandatory.  A ``REPRO_SANITIZE=1`` runtime sanitizer
(:mod:`repro.analysis.sanitize`) cross-checks the guard's static claims
dynamically in tier-2.

Command line: ``python -m repro.analysis --self`` (analyze the shipped
tree; the tier-1 gate), ``--json`` (machine-readable findings),
``--rules TCQ7`` (filter by code prefix), ``--codes`` (the diagnostic
table), ``--query 'SELECT ...'`` (plan-check a query against an empty
catalog), or any list of paths.
"""

from repro.analysis.guard import GuardResult, guard_paths
from repro.analysis.lint import EXEMPT_TAGS, lint_paths, lint_source
from repro.analysis.plan_check import (AdmissionContext, check_admission,
                                       check_compiled, check_fjord,
                                       check_flow_graph, check_join_graph,
                                       check_predicate, check_query,
                                       check_spec, check_windows)
from repro.analysis.report import (CODES, Diagnostic, DiagnosticReport,
                                   ERROR, LINT, PlanCheckWarning, WARNING,
                                   render_codes_table, severity_of)
from repro.analysis.suppress import Suppressions, parse_suppressions

__all__ = [
    "AdmissionContext", "CODES", "Diagnostic", "DiagnosticReport",
    "ERROR", "EXEMPT_TAGS", "GuardResult", "LINT", "PlanCheckWarning",
    "Suppressions", "WARNING",
    "check_admission", "check_compiled", "check_fjord", "check_flow_graph",
    "check_join_graph", "check_predicate", "check_query", "check_spec",
    "check_windows", "guard_paths", "lint_paths", "lint_source",
    "parse_suppressions", "render_codes_table", "severity_of",
]
