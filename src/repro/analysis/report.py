"""Diagnostics: the shared currency of the static-analysis subsystem.

Both tcqcheck targets — the plan verifier (:mod:`repro.analysis.plan_check`)
and the codebase invariant linter (:mod:`repro.analysis.lint`) — emit
:class:`Diagnostic` records.  A diagnostic carries a stable code
(``TCQ101``), a severity derived from the code's century, a message, and
a *location*: either a character span back into the query text (plan
checks) or a file:line pair (code lints).

Code families:

* ``TCQ1xx`` — plan **errors**: the query is rejected at admission.
* ``TCQ2xx`` — plan **warnings**: admitted, but surfaced to the client.
* ``TCQ3xx`` — code **lints**: invariants of this codebase itself.
* ``TCQ7xx`` — whole-program **guard** findings: concurrency and
  process-boundary hazards from :mod:`repro.analysis.guard`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple as TypingTuple

#: Severity levels, ordered.
ERROR = "error"
WARNING = "warning"
LINT = "lint"

#: Every diagnostic code tcqcheck can emit, with its one-line meaning.
#: ``python -m repro.analysis --codes`` prints this table; DESIGN.md §9
#: mirrors it.
CODES: Dict[str, str] = {
    "TCQ100": "query failed to parse or compile",
    "TCQ101": "contradictory constraints on a column (conjunction is "
              "unsatisfiable)",
    "TCQ102": "impossible equality chain across joined columns",
    "TCQ103": "join missing a SteM pair: stream has no equijoin path to "
              "the rest of the query",
    "TCQ104": "dataflow operator unreachable from any ingress, or unable "
              "to reach any egress",
    "TCQ105": "window can never fire (loop never entered, or every "
              "instance is empty)",
    "TCQ106": "window loop makes no progress (re-evaluates the same "
              "instant forever)",
    "TCQ201": "duplicate predicate factor (folded into one grouped-filter "
              "entry)",
    "TCQ202": "subsumed predicate factor (implied by a tighter factor on "
              "the same column)",
    "TCQ203": "trivial factor (always true; contributes no filtering)",
    "TCQ204": "query bridges previously-independent footprint classes "
              "(their shared engines will be merged)",
    "TCQ205": "lineage/ready-bit capacity nearly exhausted (wide query or "
              "crowded query class)",
    "TCQ206": "window slide exceeds range: some tuples fall in gaps no "
              "window ever sees",
    "TCQ301": "EddyOperator subclass overrides handle without handle_batch "
              "(batch/per-tuple parity)",
    "TCQ302": "telemetry series violates tcq_* naming or registers one "
              "name with two kinds",
    "TCQ303": "direct time.* clock call outside monitor/clock.py "
              "(clock discipline)",
    "TCQ304": "class defines run_once without ready/finished "
              "(Schedulable conformance)",
    "TCQ305": "unbounded list append in a class documented as bounded "
              "(bounded-ring discipline)",
    "TCQ401": "direct TelegraphCQServer construction outside "
              "repro.client (the unified connect() API is the only door)",
    "TCQ501": "row-granular batch access (.materialize() / foreign "
              "._rows) in a hot-path module (columnar discipline)",
    "TCQ601": "process primitive (multiprocessing / os.fork / "
              "ProcessPoolExecutor) outside repro/flux/procs.py "
              "(process confinement)",
    "TCQ701": "blocking call (time.sleep / sync IO / subprocess / "
              "Connection.recv) reachable from an async-context function",
    "TCQ702": "unpicklable value (lambda, local class/def, open handle) "
              "reaches a cross-process payload",
    "TCQ703": "module-level mutable container mutated from a run_once/"
              "handler path (shared-state race candidate)",
    "TCQ704": "asyncio primitive used outside repro.net",
    "TCQ705": "telemetry series constructed outside the registry helpers",
}


def severity_of(code: str) -> str:
    """Severity from the code's century: 1xx error, 2xx warning, 3xx lint."""
    if code.startswith("TCQ1"):
        return ERROR
    if code.startswith("TCQ2"):
        return WARNING
    return LINT


class PlanCheckWarning(UserWarning):
    """Category for plan-verifier warnings surfaced at admission time."""


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a message, and where it points."""

    code: str
    message: str
    #: Character span into :attr:`source` (query text); (-1, -1) if none.
    span: TypingTuple[int, int] = (-1, -1)
    #: The text the span indexes (the query), kept so rendering is
    #: self-contained.
    source: str = ""
    #: For code lints: the offending file and 1-based line.
    file: str = ""
    line: int = 0
    #: Optional remediation hint appended to the rendering.
    hint: str = ""

    @property
    def severity(self) -> str:
        return severity_of(self.code)

    # -- wire serialization ------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict that :meth:`from_dict` rebuilds losslessly —
        spans and source text included, so a client-side render of a
        round-tripped diagnostic is byte-identical to the server's."""
        return {"code": self.code, "message": self.message,
                "span": list(self.span), "source": self.source,
                "file": self.file, "line": self.line, "hint": self.hint}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Diagnostic":
        span = payload.get("span") or (-1, -1)
        return cls(code=str(payload.get("code", "TCQ100")),
                   message=str(payload.get("message", "")),
                   span=(int(span[0]), int(span[1])),
                   source=str(payload.get("source", "")),
                   file=str(payload.get("file", "")),
                   line=int(payload.get("line", 0)),
                   hint=str(payload.get("hint", "")))

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def render(self, color: bool = False) -> str:
        """One human-readable block; spans get a caret line under the
        offending slice of the query text."""
        head = f"{self.code} {self.severity}: {self.message}"
        if self.file:
            head = f"{self.file}:{self.line}: {head}"
        lines = [head]
        start, end = self.span
        if 0 <= start < len(self.source):
            line_start = self.source.rfind("\n", 0, start) + 1
            line_end = self.source.find("\n", start)
            if line_end == -1:
                line_end = len(self.source)
            snippet = self.source[line_start:line_end]
            col = start - line_start
            width = max(1, min(end, line_end) - start)
            lines.append(f"  | {snippet}")
            lines.append("  | " + " " * col + "^" + "~" * (width - 1))
        if self.hint:
            lines.append(f"  = hint: {self.hint}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class DiagnosticReport:
    """An ordered collection of diagnostics with severity partitions."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    # -- partitions --------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def lints(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == LINT]

    @property
    def ok(self) -> bool:
        """True when nothing at all was found."""
        return not self.diagnostics

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def render(self) -> str:
        if self.ok:
            return "ok: no diagnostics"
        blocks = [d.render() for d in self.diagnostics]
        counts = []
        for label, group in (("error", self.errors),
                             ("warning", self.warnings),
                             ("lint", self.lints)):
            if group:
                plural = "s" if len(group) != 1 else ""
                counts.append(f"{len(group)} {label}{plural}")
        blocks.append(", ".join(counts))
        return "\n".join(blocks)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __repr__(self) -> str:
        return f"DiagnosticReport({self.codes()})"


def render_codes_table() -> str:
    """The full code table (for ``--codes`` and the docs)."""
    lines = []
    for code in sorted(CODES):
        lines.append(f"{code}  {severity_of(code):7s}  {CODES[code]}")
    return "\n".join(lines)


def make_span(start: int, end: Optional[int] = None) -> TypingTuple[int, int]:
    """Clamp helper so callers never emit inverted spans."""
    if end is None or end < start:
        end = start + 1
    return (start, end)


#: Default field() users can share for span-bearing AST nodes.
NO_SPAN: TypingTuple[int, int] = (-1, -1)


def span_field():
    """A dataclass field for spans that stays out of eq/hash."""
    return field(default=NO_SPAN, compare=False, repr=False)
