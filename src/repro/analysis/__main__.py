"""Command-line front end for tcqcheck.

Exit status is the number of findings capped at 125 (so shells see a
truthy failure), 0 when clean::

    python -m repro.analysis --self          # lint + guard the shipped tree
    python -m repro.analysis src/ tools/x.py # analyze arbitrary paths
    python -m repro.analysis --self --json   # machine-readable findings
    python -m repro.analysis --self --rules TCQ7   # only the guard family
    python -m repro.analysis --codes         # print the code table
    python -m repro.analysis --query "SELECT * FROM s WHERE x > 5 AND x < 3"

Two passes run over source paths: the per-file invariant linter
(TCQ3xx–6xx) and the whole-program guard (TCQ7xx).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

from repro.analysis.guard import guard_paths
from repro.analysis.lint import lint_paths
from repro.analysis.plan_check import check_spec
from repro.analysis.report import Diagnostic, render_codes_table


def _self_root() -> str:
    """The shipped package tree (the directory holding this package's
    parent, i.e. ``src/repro``)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def _finding_json(d: Diagnostic) -> dict:
    return {
        "rule": d.code,
        "path": d.file,
        "line": d.line,
        "span": list(d.span),
        "severity": d.severity,
        "message": d.message,
        "hint": d.hint,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="tcqcheck: plan verifier + invariant linter + "
                    "whole-program guard")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze")
    parser.add_argument("--self", dest="lint_self", action="store_true",
                        help="analyze the installed repro package tree")
    parser.add_argument("--codes", action="store_true",
                        help="print the diagnostic code table and exit")
    parser.add_argument("--json", dest="as_json", action="store_true",
                        help="emit findings as a JSON object")
    parser.add_argument("--rules", metavar="PREFIXES",
                        help="only report codes matching the given "
                             "comma-separated prefixes (e.g. TCQ7 or "
                             "TCQ501,TCQ70)")
    parser.add_argument("--query", metavar="SQL",
                        help="plan-check one query string (no catalog; "
                             "spec-level checks only)")
    args = parser.parse_args(argv)

    if args.codes:
        print(render_codes_table())
        return 0

    findings: List[Diagnostic] = []
    suppressed = 0
    if args.query:
        from repro.query.parser import parse
        from repro.errors import ParseError
        try:
            findings.extend(check_spec(parse(args.query)))
        except ParseError as exc:
            print(f"TCQ100 error: {exc}")
            return 1
    paths = list(args.paths)
    if args.lint_self:
        paths.append(_self_root())
    if paths:
        findings.extend(lint_paths(paths))
        guard = guard_paths(paths)
        findings.extend(guard.diagnostics)
        suppressed += guard.suppressed
    elif not args.query:
        parser.error("nothing to do: pass paths, --self, --codes, "
                     "or --query")

    if args.rules:
        prefixes = tuple(p.strip() for p in args.rules.split(",") if p.strip())
        findings = [d for d in findings if d.code.startswith(prefixes)]

    findings.sort(key=lambda d: (d.file, d.line, d.code))
    n = len(findings)
    if args.as_json:
        print(json.dumps({
            "findings": [_finding_json(d) for d in findings],
            "count": n,
            "suppressed": suppressed,
        }, indent=2))
    else:
        for d in findings:
            print(d.render())
        tail = f"{n} finding{'s' if n != 1 else ''}"
        if suppressed:
            tail += f" ({suppressed} suppressed)"
        print(tail)
    return min(n, 125)


if __name__ == "__main__":
    sys.exit(main())
