"""Command-line front end for tcqcheck.

Exit status is the number of findings capped at 125 (so shells see a
truthy failure), 0 when clean::

    python -m repro.analysis --self          # lint the shipped tree
    python -m repro.analysis src/ tools/x.py # lint arbitrary paths
    python -m repro.analysis --codes         # print the code table
    python -m repro.analysis --query "SELECT * FROM s WHERE x > 5 AND x < 3"
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

from repro.analysis.lint import lint_paths
from repro.analysis.plan_check import check_spec
from repro.analysis.report import Diagnostic, render_codes_table


def _self_root() -> str:
    """The shipped package tree (the directory holding this package's
    parent, i.e. ``src/repro``)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="tcqcheck: plan verifier + codebase invariant linter")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--self", dest="lint_self", action="store_true",
                        help="lint the installed repro package tree")
    parser.add_argument("--codes", action="store_true",
                        help="print the diagnostic code table and exit")
    parser.add_argument("--query", metavar="SQL",
                        help="plan-check one query string (no catalog; "
                             "spec-level checks only)")
    args = parser.parse_args(argv)

    if args.codes:
        print(render_codes_table())
        return 0

    findings: List[Diagnostic] = []
    if args.query:
        from repro.query.parser import parse
        from repro.errors import ParseError
        try:
            findings.extend(check_spec(parse(args.query)))
        except ParseError as exc:
            print(f"TCQ100 error: {exc}")
            return 1
    paths = list(args.paths)
    if args.lint_self:
        paths.append(_self_root())
    if paths:
        findings.extend(lint_paths(paths))
    elif not args.query:
        parser.error("nothing to do: pass paths, --self, --codes, "
                     "or --query")

    for d in findings:
        print(d.render())
    n = len(findings)
    print(f"{n} finding{'s' if n != 1 else ''}")
    return min(n, 125)


if __name__ == "__main__":
    sys.exit(main())
