"""tcqcheck target 2: the codebase invariant linter.

The eddy/SteM/Fjord machinery leans on conventions no type checker can
see: per-tuple and batch code paths must stay behaviourally identical,
telemetry series share one global namespace, virtual time only works if
nobody reads the wall clock directly, and the unified scheduler trusts
every unit to speak the Schedulable protocol.  These are exactly the
invariants that rot silently — a missing ``handle_batch`` falls back to
the per-tuple loop and only shows up as a benchmark regression months
later.

This module walks Python sources with :mod:`ast` (two passes: a
cross-module class map first, then per-file rules) and emits ``TCQ3xx``
:class:`~repro.analysis.report.Diagnostic` records:

* ``TCQ301`` batch parity — an ``EddyOperator`` descendant overriding
  ``handle`` must override ``handle_batch`` too;
* ``TCQ302`` telemetry naming — literal series names must be ``tcq_*``
  and one name must not register under two kinds;
* ``TCQ303`` clock discipline — no ``time.time`` / ``time.monotonic`` /
  ``time.perf_counter`` outside ``monitor/clock.py``;
* ``TCQ304`` Schedulable conformance — a class defining ``run_once``
  must provide ``ready`` and ``finished`` (directly or inherited);
* ``TCQ305`` bounded-ring discipline — a class documented as *bounded*
  must not grow a list attribute by append alone;
* ``TCQ401`` one front door — ``TelegraphCQServer`` may only be
  constructed inside :mod:`repro.client` (and the engine module that
  defines it); everyone else goes through ``repro.client.connect()``;
* ``TCQ501`` columnar discipline — hot-path modules (``repro/core``,
  ``repro/query``) must not drop a ``TupleBatch`` to row granularity:
  no ``.materialize()`` calls and no foreign ``._rows`` pokes outside
  the batch implementation itself.  Row materialization costs one
  Python object per cell and forfeits every kernel; the handful of
  legitimately row-granular sites (SteM storage, dedupe emission,
  per-element kernel fallback) carry explicit exemptions;
* ``TCQ601`` process confinement — multiprocessing / ``os.fork`` /
  ``ProcessPoolExecutor`` primitives live only in
  ``repro/flux/procs.py``.  Worker lifecycle (spawn, teardown,
  orphan prevention) is centralised there; a stray ``Process`` in
  another module escapes the atexit sweep and leaks interpreters.

A finding is suppressed by an exemption comment on the offending line
(or the ``class``/``def`` line for class-level rules)::

    self.t0 = time.monotonic()   # tcqcheck: allow-clock

Run as ``python -m repro.analysis --self`` (the tier-1 gate) or point it
at any path.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.report import Diagnostic
from repro.analysis.suppress import ALLOW_RE

#: Rule tag -> legacy exemption comment suffix (``# tcqcheck:
#: allow-<tag>``).  The modern form is the code-addressed
#: ``# tcq: allow[TCQ303] reason`` (see :mod:`repro.analysis.suppress`),
#: which works for every rule family; the legacy tags stay recognised so
#: existing annotations keep meaning what they said.
EXEMPT_TAGS = {
    "TCQ301": "allow-no-batch",
    "TCQ302": "allow-metric-name",
    "TCQ303": "allow-clock",
    "TCQ304": "allow-not-schedulable",
    "TCQ305": "allow-unbounded",
    "TCQ401": "allow-direct-server",
    "TCQ501": "allow-row-iteration",
    "TCQ601": "allow-process",
}

#: TCQ501 scope: path fragments whose files are batch hot paths.  The
#: batch implementations themselves (tuples.py, columnar.py) carry no
#: special-case list — any row-granular site there is either clean
#: (``self._rows`` is the backing store) or carries an inline allow.
_HOT_PATH_DIRS = ("repro/core/", "repro/query/")

_CLOCK_NAMES = {"time", "monotonic", "perf_counter", "monotonic_ns",
                "time_ns", "perf_counter_ns"}
_METRIC_KINDS = {"counter", "gauge", "histogram"}
_SHRINK_CALLS = {"pop", "popleft", "clear", "remove", "__delitem__"}


def _is_exempt(lines: Sequence[str], lineno: int, code: str) -> bool:
    """True when the offending line carries either suppression form:
    the legacy tag (``# tcqcheck: allow-clock``) or the code-addressed
    ``# tcq: allow[TCQ303] reason``."""
    if not 1 <= lineno <= len(lines):
        return False
    text = lines[lineno - 1]
    tag = EXEMPT_TAGS.get(code)
    if tag and f"tcqcheck: {tag}" in text:
        return True
    m = ALLOW_RE.search(text)
    if m and (m.group(2) or "").strip():
        codes = {c.strip() for c in m.group(1).split(",")}
        return code in codes
    return False


class _ClassInfo:
    """What pass 1 learned about one class definition."""

    __slots__ = ("name", "qualname", "bases", "methods", "attrs", "file",
                 "line", "docstring")

    def __init__(self, name: str, bases: List[str], file: str, line: int,
                 docstring: str):
        self.name = name
        self.bases = bases          # base names as written (last component)
        self.methods: Set[str] = set()
        self.attrs: Set[str] = set()        # self.<attr> assigned anywhere
        self.file = file
        self.line = line
        self.docstring = docstring


def _base_name(expr: ast.expr) -> Optional[str]:
    """The last component of a base-class expression (``eddy.EddyOperator``
    -> ``EddyOperator``); None for calls/subscripts we cannot resolve."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):        # Generic[...] etc.
        return _base_name(expr.value)
    return None


def _collect_classes(tree: ast.Module, file: str) -> List[_ClassInfo]:
    out: List[_ClassInfo] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = [b for b in (_base_name(e) for e in node.bases)
                 if b is not None]
        info = _ClassInfo(node.name, bases, file, node.lineno,
                          ast.get_docstring(node) or "")
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods.add(item.name)
                for sub in ast.walk(item):
                    target = None
                    if isinstance(sub, ast.Assign):
                        for t in sub.targets:
                            if isinstance(t, ast.Attribute) and \
                                    isinstance(t.value, ast.Name) and \
                                    t.value.id == "self":
                                info.attrs.add(t.attr)
                    elif isinstance(sub, ast.AnnAssign):
                        target = sub.target
                    elif isinstance(sub, ast.AugAssign):
                        target = sub.target
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        info.attrs.add(target.attr)
            elif isinstance(item, ast.Assign):
                for t in item.targets:
                    if isinstance(t, ast.Name):
                        info.attrs.add(t.id)
            elif isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                info.attrs.add(item.target.id)
        out.append(info)
    return out


class _Hierarchy:
    """Name-keyed class map with transitive base/member lookups.

    Cross-module resolution is by *bare class name* — good enough for a
    single codebase with unique class names, and it keeps the linter
    import-free."""

    def __init__(self, classes: Iterable[_ClassInfo]):
        self.by_name: Dict[str, _ClassInfo] = {}
        for c in classes:
            # First definition wins; duplicates are rare and benign here.
            self.by_name.setdefault(c.name, c)

    def ancestors(self, name: str) -> Set[str]:
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            info = self.by_name.get(frontier.pop())
            if info is None:
                continue
            for b in info.bases:
                if b not in seen:
                    seen.add(b)
                    frontier.append(b)
        return seen

    def is_descendant_of(self, name: str, root: str) -> bool:
        return root in self.ancestors(name)

    def defines_member(self, name: str, member: str,
                       include_bases: bool = True) -> bool:
        names = [name]
        if include_bases:
            names += list(self.ancestors(name))
        for n in names:
            info = self.by_name.get(n)
            if info and (member in info.methods or member in info.attrs):
                return True
        return False


# -- individual rules ----------------------------------------------------------

def _rule_batch_parity(tree: ast.Module, file: str, lines: Sequence[str],
                       hierarchy: _Hierarchy) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name == "EddyOperator" or \
                not hierarchy.is_descendant_of(node.name, "EddyOperator"):
            continue
        names = {i.name for i in node.body
                 if isinstance(i, (ast.FunctionDef, ast.AsyncFunctionDef))}
        if "handle" in names and "handle_batch" not in names:
            if _is_exempt(lines, node.lineno, "TCQ301"):
                continue
            diags.append(Diagnostic(
                "TCQ301",
                f"{node.name} overrides EddyOperator.handle but not "
                f"handle_batch; vectorized routing silently falls back to "
                f"the per-tuple loop",
                file=file, line=node.lineno,
                hint="override handle_batch with equivalent semantics, or "
                     "mark the class '# tcqcheck: allow-no-batch'"))
    return diags


def _rule_telemetry_names(tree: ast.Module, file: str, lines: Sequence[str],
                          registry: Dict[str, Tuple[str, str, int]]
                          ) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_KINDS and node.args):
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant)
                and isinstance(first.value, str)):
            continue
        name, kind = first.value, node.func.attr
        if _is_exempt(lines, node.lineno, "TCQ302"):
            continue
        if not name.startswith("tcq_"):
            diags.append(Diagnostic(
                "TCQ302",
                f"telemetry series {name!r} does not carry the tcq_ prefix",
                file=file, line=node.lineno,
                hint="all series share one namespace; prefix with tcq_"))
        prior = registry.get(name)
        if prior is None:
            registry[name] = (kind, file, node.lineno)
        elif prior[0] != kind:
            diags.append(Diagnostic(
                "TCQ302",
                f"telemetry series {name!r} registered as {kind} here but "
                f"as {prior[0]} at {prior[1]}:{prior[2]}",
                file=file, line=node.lineno,
                hint="one series name must keep one kind"))
    return diags


def _rule_clock_discipline(tree: ast.Module, file: str,
                           lines: Sequence[str]) -> List[Diagnostic]:
    norm = file.replace(os.sep, "/")
    if norm.endswith("monitor/clock.py"):
        return []
    diags: List[Diagnostic] = []
    for node in ast.walk(tree):
        bad: Optional[str] = None
        lineno = 0
        if isinstance(node, ast.Attribute) and node.attr in _CLOCK_NAMES \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "time":
            bad, lineno = f"time.{node.attr}", node.lineno
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_NAMES:
                    bad, lineno = f"from time import {alias.name}", node.lineno
                    break
        if bad is None or _is_exempt(lines, lineno, "TCQ303"):
            continue
        diags.append(Diagnostic(
            "TCQ303",
            f"direct clock access ({bad}) outside monitor/clock.py breaks "
            f"virtual-time testing and telemetry consistency",
            file=file, line=lineno,
            hint="use repro.monitor.clock (or mark the line "
                 "'# tcqcheck: allow-clock' for benchmark code)"))
    return diags


def _rule_schedulable(tree: ast.Module, file: str, lines: Sequence[str],
                      hierarchy: _Hierarchy) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        names = {i.name for i in node.body
                 if isinstance(i, (ast.FunctionDef, ast.AsyncFunctionDef))}
        if "run_once" not in names:
            continue
        missing = [m for m in ("ready", "finished")
                   if not hierarchy.defines_member(node.name, m)]
        if not missing:
            continue
        if _is_exempt(lines, node.lineno, "TCQ304"):
            continue
        diags.append(Diagnostic(
            "TCQ304",
            f"{node.name} defines run_once but not "
            f"{' or '.join(missing)}; schedulers will fall back to "
            f"polling it forever",
            file=file, line=node.lineno,
            hint="satisfy the Schedulable protocol (sched/protocol.py), "
                 "or mark the class '# tcqcheck: allow-not-schedulable'"))
    return diags


def _rule_bounded_rings(tree: ast.Module, file: str,
                        lines: Sequence[str]) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        doc = (ast.get_docstring(node) or "").lower()
        if "bounded" not in doc or "unbounded" in doc:
            continue
        list_attrs: Dict[str, int] = {}
        appended: Dict[str, int] = {}
        shrunk: Set[str] = set()
        reassigned: Set[str] = set()
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            in_init = item.name == "__init__"
            for sub in ast.walk(item):
                if isinstance(sub, ast.Assign):
                    for t in sub.targets:
                        if isinstance(t, ast.Attribute) and \
                                isinstance(t.value, ast.Name) and \
                                t.value.id == "self":
                            if in_init and isinstance(sub.value, ast.List) \
                                    and not sub.value.elts:
                                list_attrs.setdefault(t.attr, sub.lineno)
                            elif not in_init:
                                reassigned.add(t.attr)
                        elif isinstance(t, ast.Subscript) and \
                                isinstance(t.value, ast.Attribute) and \
                                isinstance(t.value.value, ast.Name) and \
                                t.value.value.id == "self":
                            # self.x[...] = — slice trimming counts
                            shrunk.add(t.value.attr)
                elif isinstance(sub, ast.Call) and \
                        isinstance(sub.func, ast.Attribute) and \
                        isinstance(sub.func.value, ast.Attribute) and \
                        isinstance(sub.func.value.value, ast.Name) and \
                        sub.func.value.value.id == "self":
                    attr, meth = sub.func.value.attr, sub.func.attr
                    if meth == "append":
                        appended.setdefault(attr, sub.lineno)
                    elif meth in _SHRINK_CALLS:
                        shrunk.add(attr)
                elif isinstance(sub, ast.Delete):
                    for t in sub.targets:
                        v = t.value if isinstance(t, ast.Subscript) else t
                        if isinstance(v, ast.Attribute) and \
                                isinstance(v.value, ast.Name) and \
                                v.value.id == "self":
                            shrunk.add(v.attr)
        for attr, init_line in sorted(list_attrs.items()):
            if attr not in appended or attr in shrunk or attr in reassigned:
                continue
            lineno = appended[attr]
            if _is_exempt(lines, lineno, "TCQ305") or \
                    _is_exempt(lines, node.lineno, "TCQ305"):
                continue
            diags.append(Diagnostic(
                "TCQ305",
                f"{node.name} is documented as bounded but grows "
                f"self.{attr} by append with no pop/clear/trim anywhere",
                file=file, line=lineno,
                hint="trim the buffer, switch to a ring, or mark the "
                     "append '# tcqcheck: allow-unbounded'"))
    return diags


def _rule_server_door(tree: ast.Module, file: str,
                      lines: Sequence[str]) -> List[Diagnostic]:
    """TCQ401: ``TelegraphCQServer(...)`` construction is confined to
    repro.client (the unified connect() API) and the defining module."""
    norm = file.replace(os.sep, "/")
    if "/client/" in norm or norm.endswith("core/engine.py") or \
            "/tests/" in norm or norm.rsplit("/", 1)[-1].startswith("test_"):
        return []
    diags: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and _base_name(node.func) == "TelegraphCQServer"):
            continue
        if _is_exempt(lines, node.lineno, "TCQ401"):
            continue
        diags.append(Diagnostic(
            "TCQ401",
            "direct TelegraphCQServer construction bypasses the unified "
            "client API; engines reached this way are invisible to the "
            "service and its admin plane",
            file=file, line=node.lineno,
            hint="use repro.client.connect() / LocalConnection, or mark "
                 "the call '# tcqcheck: allow-direct-server'"))
    return diags


def _rule_columnar_discipline(tree: ast.Module, file: str,
                              lines: Sequence[str]) -> List[Diagnostic]:
    """TCQ501: no row-granular batch access in the hot-path modules."""
    norm = file.replace(os.sep, "/")
    if not any(d in norm for d in _HOT_PATH_DIRS):
        return []
    diags: List[Diagnostic] = []
    for node in ast.walk(tree):
        bad: Optional[str] = None
        lineno = 0
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "materialize":
            bad = "batch.materialize() drops to one Python object per row"
            lineno = node.lineno
        elif isinstance(node, ast.Attribute) and node.attr == "_rows" \
                and not (isinstance(node.value, ast.Name)
                         and node.value.id == "self"):
            bad = "foreign ._rows access bypasses the columnar store"
            lineno = node.lineno
        if bad is None or _is_exempt(lines, lineno, "TCQ501"):
            continue
        diags.append(Diagnostic(
            "TCQ501",
            f"row-granular batch access in a hot-path module: {bad}",
            file=file, line=lineno,
            hint="use column()/column_array()/partition()/take() kernels, "
                 "or mark a legitimately row-granular site "
                 "'# tcqcheck: allow-row-iteration'"))
    return diags


_FORK_OS_NAMES = {"fork", "forkpty", "posix_spawn", "posix_spawnp"}
_PROCESS_EXECUTORS = {"ProcessPoolExecutor"}


def _rule_process_confinement(tree: ast.Module, file: str,
                              lines: Sequence[str]) -> List[Diagnostic]:
    """TCQ601: process-spawning primitives are confined to
    ``repro/flux/procs.py``, where lifecycle (graceful teardown, the
    atexit sweep, the orphan leak check) is centralised."""
    norm = file.replace(os.sep, "/")
    if "/tests/" in norm or norm.rsplit("/", 1)[-1].startswith("test_"):
        return []
    diags: List[Diagnostic] = []
    for node in ast.walk(tree):
        bad: Optional[str] = None
        lineno = 0
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "multiprocessing":
                    bad, lineno = f"import {alias.name}", node.lineno
                    break
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.split(".")[0] == "multiprocessing":
                bad, lineno = f"from {module} import ...", node.lineno
            elif module.startswith("concurrent.futures"):
                hit = [a.name for a in node.names
                       if a.name in _PROCESS_EXECUTORS]
                if hit:
                    bad = f"from {module} import {hit[0]}"
                    lineno = node.lineno
        elif isinstance(node, ast.Attribute) and \
                node.attr in _FORK_OS_NAMES and \
                isinstance(node.value, ast.Name) and node.value.id == "os":
            bad, lineno = f"os.{node.attr}", node.lineno
        elif isinstance(node, ast.Attribute) and \
                node.attr in _PROCESS_EXECUTORS:
            bad, lineno = f"{node.attr}", node.lineno
        if bad is None or _is_exempt(lines, lineno, "TCQ601"):
            continue
        diags.append(Diagnostic(
            "TCQ601",
            f"process primitive ({bad}) outside repro/flux/procs.py; "
            f"workers spawned here escape the centralised teardown and "
            f"orphan sweep",
            file=file, line=lineno,
            hint="route process work through repro.flux.procs "
                 "(MultiprocessBackend), or mark the line "
                 "'# tcqcheck: allow-process'"))
    return diags


# -- drivers -------------------------------------------------------------------

def _parse_file(path: str) -> Optional[Tuple[ast.Module, List[str]]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        return ast.parse(text, filename=path), text.splitlines()
    except (OSError, SyntaxError):
        return None


def iter_python_files(paths: Iterable[str]) -> List[str]:
    out: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                out.extend(os.path.join(root, f) for f in sorted(files)
                           if f.endswith(".py"))
        elif p.endswith(".py"):
            out.append(p)
    return out


def lint_paths(paths: Iterable[str]) -> List[Diagnostic]:
    """Lint every ``.py`` under ``paths`` (files or directories)."""
    files = iter_python_files(paths)
    parsed: List[Tuple[str, ast.Module, List[str]]] = []
    classes: List[_ClassInfo] = []
    for f in files:
        result = _parse_file(f)
        if result is None:
            continue
        tree, lines = result
        parsed.append((f, tree, lines))
        classes.extend(_collect_classes(tree, f))
    hierarchy = _Hierarchy(classes)
    registry: Dict[str, Tuple[str, str, int]] = {}
    diags: List[Diagnostic] = []
    for f, tree, lines in parsed:
        diags.extend(_rule_batch_parity(tree, f, lines, hierarchy))
        diags.extend(_rule_telemetry_names(tree, f, lines, registry))
        diags.extend(_rule_clock_discipline(tree, f, lines))
        diags.extend(_rule_schedulable(tree, f, lines, hierarchy))
        diags.extend(_rule_bounded_rings(tree, f, lines))
        diags.extend(_rule_server_door(tree, f, lines))
        diags.extend(_rule_columnar_discipline(tree, f, lines))
        diags.extend(_rule_process_confinement(tree, f, lines))
    return diags


def lint_source(source: str, file: str = "<string>",
                extra_sources: Optional[Dict[str, str]] = None
                ) -> List[Diagnostic]:
    """Lint a source string (tests, tooling).  ``extra_sources`` maps
    file names to source text that contributes classes to the hierarchy
    without being linted itself."""
    tree = ast.parse(source, filename=file)
    lines = source.splitlines()
    classes = _collect_classes(tree, file)
    for name, text in (extra_sources or {}).items():
        classes.extend(_collect_classes(ast.parse(text, filename=name), name))
    hierarchy = _Hierarchy(classes)
    registry: Dict[str, Tuple[str, str, int]] = {}
    diags: List[Diagnostic] = []
    diags.extend(_rule_batch_parity(tree, file, lines, hierarchy))
    diags.extend(_rule_telemetry_names(tree, file, lines, registry))
    diags.extend(_rule_clock_discipline(tree, file, lines))
    diags.extend(_rule_schedulable(tree, file, lines, hierarchy))
    diags.extend(_rule_bounded_rings(tree, file, lines))
    diags.extend(_rule_server_door(tree, file, lines))
    diags.extend(_rule_columnar_discipline(tree, file, lines))
    diags.extend(_rule_process_confinement(tree, file, lines))
    return diags
