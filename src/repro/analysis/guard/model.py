"""Whole-program project model for the TCQ7xx guard pass.

One parse of every module under the analysis root produces:

* a module table (dotted name -> :class:`ModuleInfo`) with per-module
  import alias maps,
* per-module symbol tables (classes, functions, module-level globals),
* a class hierarchy (ancestors *and* descendants, so protocol dispatch
  can fan out to implementations), and
* a conservative call graph, resolved in tiers::

      f()                   same-module function or imported project symbol
      mod.f()               module alias -> project function
      self.m()              own class, ancestors, then descendants
      self.attr.m()         via inferred attribute type (``self.x = C()``,
                            ``self.x: C = ...``), then that type's tree
      var.m()               via inferred local type (``var = C()``, ``var: C``)
      obj.m()               unique-name fallback: linked only when exactly
                            one project class defines ``m``

  The unique-name fallback is what keeps reachability honest: a dynamic
  dispatch like ``unit.run_once()`` (dozens of implementations) produces
  *no* edge, and the rules instead seed every ``run_once`` directly.

Calls that resolve to nothing in the project are kept as
:class:`CallSite` records with their best-effort external dotted name
(``time.sleep``, ``multiprocessing.connection.wait``) so rules can match
blocking primitives without the graph.

Nested functions, lambdas and local classes are folded into their
enclosing top-level function or method: their call sites belong to the
enclosing unit, which matches how they execute.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from ..suppress import Suppressions, parse_suppressions

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_model",
    "iter_module_files",
]


# ---------------------------------------------------------------------------
# data records


@dataclass
class CallSite:
    """One ``Call`` expression inside a function body."""

    node: ast.Call
    lineno: int
    col: int
    #: trailing attribute / bare name being called (``sleep``, ``recv``)
    attr: str
    #: best-effort dotted name when the callee chains to an import
    #: (``time.sleep``); ``None`` when the head is a runtime value
    external: str | None
    #: fully-qualified project functions this call may dispatch to
    targets: tuple
    #: the call sits directly under an ``await``
    awaited: bool


@dataclass
class FunctionInfo:
    qualname: str
    name: str
    module: str
    node: ast.AST
    lineno: int
    is_async: bool
    #: owning class qualname (``repro.net.service.NetworkPump``) or None
    cls: str | None = None
    calls: list = field(default_factory=list)
    #: raw call expressions, resolved into ``calls`` once the whole
    #: project is indexed
    raw_calls: list = field(default_factory=list)
    #: local name -> project class qualname (``v = ClassName(...)``)
    local_types: dict = field(default_factory=dict)
    #: names of parameters, in order (for boundary-sink arg mapping)
    params: tuple = ()
    #: names bound as lambdas / nested defs / local classes in this body
    local_callables: dict = field(default_factory=dict)


@dataclass
class ClassInfo:
    qualname: str
    name: str
    module: str
    node: ast.ClassDef
    #: raw base expressions (resolved lazily against the full model)
    base_exprs: list = field(default_factory=list)
    bases: list = field(default_factory=list)  # resolved class qualnames
    methods: dict = field(default_factory=dict)  # name -> FunctionInfo
    #: attribute name -> project class qualname, inferred from
    #: ``self.x = C(...)`` and ``self.x: C`` in any method
    attr_types: dict = field(default_factory=dict)


@dataclass
class ModuleInfo:
    name: str
    file: str
    source: str
    tree: ast.Module
    #: local alias -> dotted target (``be`` -> ``repro.flux.backend``,
    #: ``ClusterBackend`` -> ``repro.flux.backend.ClusterBackend``)
    imports: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)  # qualname -> FunctionInfo
    classes: dict = field(default_factory=dict)  # bare name -> ClassInfo
    #: module-level mutable container globals: name -> assign lineno
    container_globals: dict = field(default_factory=dict)
    suppressions: Suppressions = field(default_factory=Suppressions)


class ProjectModel:
    def __init__(self):
        self.modules: dict = {}  # dotted name -> ModuleInfo
        self.functions: dict = {}  # qualname -> FunctionInfo
        self.classes: dict = {}  # qualname -> ClassInfo
        self._methods_by_name: dict = {}  # bare name -> [FunctionInfo]
        self._descendants: dict = {}  # class qualname -> set of qualnames

    # -- lookups ------------------------------------------------------------

    def module_of(self, fn: FunctionInfo) -> ModuleInfo:
        return self.modules[fn.module]

    def methods_named(self, name: str) -> list:
        return self._methods_by_name.get(name, [])

    def ancestors(self, qualname: str):
        seen, stack = [], [qualname]
        while stack:
            cls = self.classes.get(stack.pop())
            if cls is None:
                continue
            for base in cls.bases:
                if base not in seen:
                    seen.append(base)
                    stack.append(base)
        return seen

    def descendants(self, qualname: str):
        return sorted(self._descendants.get(qualname, ()))

    def resolve_class(self, name: str, module: ModuleInfo):
        """Resolve a (possibly dotted) class name used inside *module*."""
        if not name:
            return None
        head, _, rest = name.partition(".")
        if not rest and head in module.classes:
            return module.classes[head]
        target = module.imports.get(head)
        if target is None:
            dotted = name
        else:
            dotted = target + ("." + rest if rest else "")
        cls = self.classes.get(dotted)
        if cls is not None:
            return cls
        # ``from x import C`` maps C -> x.C already; also try treating the
        # alias target as a module and the remainder as the class.
        mod_name, _, cls_name = dotted.rpartition(".")
        mod = self.modules.get(mod_name)
        if mod is not None and cls_name in mod.classes:
            return mod.classes[cls_name]
        return None

    def dispatch(self, cls_qualname: str, method: str):
        """Methods named *method* on the class, its ancestors and its
        descendants — the conservative fan-out for protocol calls."""
        out, seen = [], set()
        family = [cls_qualname]
        family += self.ancestors(cls_qualname)
        family += self.descendants(cls_qualname)
        for qn in family:
            cls = self.classes.get(qn)
            if cls is None:
                continue
            fn = cls.methods.get(method)
            if fn is not None and fn.qualname not in seen:
                seen.add(fn.qualname)
                out.append(fn)
        return out


# ---------------------------------------------------------------------------
# file discovery


def iter_module_files(root: str):
    """Yield ``(dotted_module_name, path)`` for every .py under *root*.

    The root directory's basename becomes the package name, so passing
    ``src/repro`` yields ``repro.flux.procs`` etc.
    """
    root = os.path.abspath(root)
    if os.path.isfile(root):
        yield os.path.splitext(os.path.basename(root))[0], root
        return
    pkg = os.path.basename(root.rstrip(os.sep))
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if not d.startswith(".") and d != "__pycache__"
        )
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            rel = os.path.relpath(path, root)
            parts = [pkg] + rel[:-3].split(os.sep)
            if parts[-1] == "__init__":
                parts.pop()
            yield ".".join(parts), path


# ---------------------------------------------------------------------------
# indexing


def _dotted(expr) -> str | None:
    """``a.b.c`` attribute chain -> string, else None."""
    parts = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return None


def _annotation_name(node) -> str | None:
    """Best-effort class name out of an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip()
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return _dotted(node)
    if isinstance(node, ast.Subscript):
        # Optional[C] / list[C]: only unwrap Optional-style wrappers where
        # the inner type is the useful one.
        outer = _annotation_name(node.value)
        if outer in ("Optional", "typing.Optional"):
            return _annotation_name(node.slice)
    return None


_CONTAINER_CTORS = {
    "list", "dict", "set", "deque", "defaultdict", "OrderedDict",
    "collections.deque", "collections.defaultdict", "collections.OrderedDict",
}


def _is_container_value(node) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name in _CONTAINER_CTORS
    return False


class _ImportIndexer:
    @staticmethod
    def index(tree: ast.Module, module_name: str) -> dict:
        imports: dict = {}
        pkg_parts = module_name.split(".")
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # relative: repro.net.service w/ level 1 -> repro.net
                    base = pkg_parts[: len(pkg_parts) - node.level]
                    prefix = ".".join(base + ([node.module] if node.module else []))
                else:
                    prefix = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name
        return imports


def _index_module(name: str, path: str, source: str, tree: ast.Module) -> ModuleInfo:
    mod = ModuleInfo(
        name=name, file=path, source=source, tree=tree,
        imports=_ImportIndexer.index(tree, name),
        suppressions=parse_suppressions(source),
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _index_function(node, mod, cls=None)
            mod.functions[fn.qualname] = fn
        elif isinstance(node, ast.ClassDef):
            _index_class(node, mod)
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name) and _is_container_value(node.value):
                    mod.container_globals[tgt.id] = node.lineno
        elif isinstance(node, ast.AnnAssign):
            if (isinstance(node.target, ast.Name) and node.value is not None
                    and _is_container_value(node.value)):
                mod.container_globals[node.target.id] = node.lineno
    return mod


def _index_class(node: ast.ClassDef, mod: ModuleInfo):
    qual = f"{mod.name}.{node.name}"
    cls = ClassInfo(
        qualname=qual, name=node.name, module=mod.name, node=node,
        base_exprs=list(node.bases),
    )
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _index_function(item, mod, cls=qual)
            cls.methods[item.name] = fn
            mod.functions[fn.qualname] = fn
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            ann = _annotation_name(item.annotation)
            if ann:
                cls.attr_types.setdefault(item.target.id, ann)
    mod.classes[node.name] = cls
    return cls


def _collect_awaited(body_nodes) -> set:
    ids = set()
    for top in body_nodes:
        for node in ast.walk(top):
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                ids.add(id(node.value))
    return ids


def _index_function(node, mod: ModuleInfo, cls: str | None) -> FunctionInfo:
    prefix = cls if cls else mod.name
    fn = FunctionInfo(
        qualname=f"{prefix}.{node.name}",
        name=node.name,
        module=mod.name,
        node=node,
        lineno=node.lineno,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        cls=cls,
        params=tuple(a.arg for a in node.args.args),
    )
    # parameter annotations feed local type inference
    for arg in list(node.args.args) + list(node.args.kwonlyargs):
        ann = _annotation_name(arg.annotation)
        if ann:
            fn.local_types[arg.arg] = ann

    awaited = _collect_awaited(node.body)
    for top in node.body:
        for sub in ast.walk(top):
            if isinstance(sub, ast.Call):
                fn.raw_calls.append((sub, id(sub) in awaited))
            elif isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                # var = ClassName(...): remember for attr-call resolution
                name = _dotted(sub.value.func)
                if name:
                    for tgt in sub.targets:
                        if isinstance(tgt, ast.Name):
                            fn.local_types.setdefault(tgt.id, name)
            elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                ann = _annotation_name(sub.annotation)
                if ann:
                    fn.local_types.setdefault(sub.target.id, ann)
            elif isinstance(sub, ast.Lambda):
                fn.local_callables.setdefault(f"<lambda:{sub.lineno}>", sub)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node:
                fn.local_callables.setdefault(sub.name, sub)
            elif isinstance(sub, ast.ClassDef):
                fn.local_callables.setdefault(sub.name, sub)
    # ``self.x = C(...)`` / ``self.x: C`` anywhere in a method enriches the
    # owning class's attribute types (filled in during build_model once the
    # class record exists).
    return fn


# ---------------------------------------------------------------------------
# model assembly


def build_model(roots) -> ProjectModel:
    model = ProjectModel()
    for root in roots:
        for mod_name, path in iter_module_files(root):
            if mod_name in model.modules:
                continue
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    source = fh.read()
                tree = ast.parse(source, filename=path)
            except (OSError, SyntaxError):
                continue
            model.modules[mod_name] = _index_module(mod_name, path, source, tree)

    for mod in model.modules.values():
        for fn in mod.functions.values():
            model.functions[fn.qualname] = fn
        for cls in mod.classes.values():
            model.classes[cls.qualname] = cls

    _resolve_bases(model)
    _infer_attr_types(model)
    _build_method_index(model)
    for mod in model.modules.values():
        for fn in mod.functions.values():
            _resolve_calls(model, mod, fn)
    return model


def _resolve_bases(model: ProjectModel):
    for cls in model.classes.values():
        mod = model.modules[cls.module]
        for expr in cls.base_exprs:
            name = _dotted(expr)
            if name is None and isinstance(expr, ast.Subscript):
                name = _dotted(expr.value)  # Generic[T] bases
            if name is None:
                continue
            base = model.resolve_class(name, mod)
            if base is not None and base.qualname != cls.qualname:
                cls.bases.append(base.qualname)
    for cls in model.classes.values():
        for anc in model.ancestors(cls.qualname):
            model._descendants.setdefault(anc, set()).add(cls.qualname)


def _infer_attr_types(model: ProjectModel):
    for cls in model.classes.values():
        mod = model.modules[cls.module]
        for method in cls.methods.values():
            for top in method.node.body:
                for sub in ast.walk(top):
                    tgt = None
                    type_name = None
                    if isinstance(sub, ast.Assign):
                        if isinstance(sub.value, ast.Call):
                            type_name = _dotted(sub.value.func)
                        elif isinstance(sub.value, ast.Name):
                            # self.x = param: use the parameter annotation
                            type_name = method.local_types.get(sub.value.id)
                        for t in sub.targets:
                            if (isinstance(t, ast.Attribute)
                                    and isinstance(t.value, ast.Name)
                                    and t.value.id == "self"):
                                tgt = t.attr
                    elif isinstance(sub, ast.AnnAssign):
                        t = sub.target
                        if (isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"):
                            tgt = t.attr
                            type_name = _annotation_name(sub.annotation)
                    if tgt and type_name:
                        resolved = model.resolve_class(type_name, mod)
                        if resolved is not None:
                            cls.attr_types.setdefault(tgt, resolved.qualname)
        # string/Name annotations recorded at class level still need
        # resolving to qualnames
        for attr, type_name in list(cls.attr_types.items()):
            if type_name not in model.classes:
                resolved = model.resolve_class(type_name, mod)
                if resolved is not None:
                    cls.attr_types[attr] = resolved.qualname
                else:
                    del cls.attr_types[attr]


def _build_method_index(model: ProjectModel):
    for cls in model.classes.values():
        for name, fn in cls.methods.items():
            model._methods_by_name.setdefault(name, []).append(fn)


def _resolve_calls(model: ProjectModel, mod: ModuleInfo, fn: FunctionInfo):
    for call, awaited in fn.raw_calls:
        func = call.func
        targets: list = []
        external: str | None = None
        attr = ""
        if isinstance(func, ast.Name):
            attr = func.id
            targets, external = _resolve_name_call(model, mod, fn, func.id)
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            targets, external = _resolve_attr_call(model, mod, fn, func)
        fn.calls.append(CallSite(
            node=call, lineno=call.lineno, col=call.col_offset, attr=attr,
            external=external, targets=tuple(t.qualname for t in targets),
            awaited=awaited,
        ))


def _resolve_name_call(model: ProjectModel, mod: ModuleInfo, fn: FunctionInfo, name: str):
    if name in fn.local_callables:
        return [], None  # nested def/lambda: body already folded into fn
    qual = f"{mod.name}.{name}"
    if qual in mod.functions:
        return [mod.functions[qual]], None
    cls = model.resolve_class(name, mod)
    if cls is not None:
        init = cls.methods.get("__init__")
        return ([init] if init else []), None
    target = mod.imports.get(name)
    if target is not None:
        tmod_name, _, tfn = target.rpartition(".")
        tmod = model.modules.get(tmod_name)
        if tmod is not None and f"{tmod_name}.{tfn}" in tmod.functions:
            return [tmod.functions[f"{tmod_name}.{tfn}"]], None
        return [], target
    return [], name


def _resolve_attr_call(model: ProjectModel, mod: ModuleInfo, fn: FunctionInfo, func: ast.Attribute):
    method = func.attr
    value = func.value

    dotted = _dotted(func)
    if dotted is not None:
        head = dotted.split(".", 1)[0]
        target = mod.imports.get(head)
        if target is not None:
            full = target + dotted[len(head):]
            # project module function through an alias?
            tmod_name, _, tfn = full.rpartition(".")
            tmod = model.modules.get(tmod_name)
            if tmod is not None and f"{tmod_name}.{tfn}" in tmod.functions:
                return [tmod.functions[f"{tmod_name}.{tfn}"]], None
            tcls = model.classes.get(tmod_name)
            if tcls is not None:
                target_fn = tcls.methods.get(tfn)
                return ([target_fn] if target_fn else []), None
            return [], full
        if head in mod.classes:  # ClassName.method(...)
            target_fn = mod.classes[head].methods.get(method)
            if target_fn is not None:
                return [target_fn], None

    # self.m() / self.attr.m() / var.m()
    recv_type = _receiver_type(model, mod, fn, value)
    if recv_type is not None:
        targets = model.dispatch(recv_type, method)
        if targets:
            return targets, None

    # unique-name fallback: only when the method name is unambiguous
    candidates = model.methods_named(method)
    if len(candidates) == 1:
        return [candidates[0]], None
    return [], None


def _receiver_type(model: ProjectModel, mod: ModuleInfo, fn: FunctionInfo, value):
    """Class qualname of the call receiver, when inferable."""
    if isinstance(value, ast.Name):
        if value.id == "self" and fn.cls:
            return fn.cls
        type_name = fn.local_types.get(value.id)
        if type_name:
            if type_name in model.classes:
                return type_name
            cls = model.resolve_class(type_name, mod)
            return cls.qualname if cls else None
        return None
    if (isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name)
            and value.value.id == "self" and fn.cls):
        cls = model.classes.get(fn.cls)
        family = [fn.cls] + model.ancestors(fn.cls) if cls else []
        for qn in family:
            owner = model.classes.get(qn)
            if owner and value.attr in owner.attr_types:
                return owner.attr_types[value.attr]
    return None
