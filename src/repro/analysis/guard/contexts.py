"""Context inference over the project model.

Three context sets drive the TCQ7xx rules:

* **async context** — functions whose code runs on the event-loop
  thread.  Seeds: every ``async def`` in the project, every
  ``run_once`` method (the net service hosts the cooperative scheduler
  *on the loop thread*, so engine quanta are loop-thread work), and the
  ``_h_*`` frame handlers dispatched by the network pump.  Closure under
  the call graph gives the async-reachable set.

* **engine context** — functions reachable from any ``run_once`` entry
  point or ``_h_*`` handler.  These interleave cooperatively, so a
  module-level mutable global mutated here is a shared-state race
  candidate (TCQ703).

* **boundary sinks** — functions that pickle one of their parameters
  (``pickle.dumps(param)``), e.g. ``_to_b64``.  A call site passing a
  lambda, nested def, local class or open handle into such a parameter
  ships an unpicklable value across the process boundary (TCQ702).

Each reachable function remembers one predecessor so diagnostics can
print a concrete call chain back to the seed.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from .model import FunctionInfo, ProjectModel

__all__ = ["Contexts", "infer_contexts"]


@dataclass
class Contexts:
    model: ProjectModel
    #: qualname -> predecessor qualname (None for seeds)
    async_reachable: dict = field(default_factory=dict)
    engine_reachable: dict = field(default_factory=dict)
    #: fn qualname -> set of parameter names that get pickled
    boundary_sinks: dict = field(default_factory=dict)

    def chain(self, table: dict, qualname: str, limit: int = 6):
        """Call chain from a seed down to *qualname* (inclusive)."""
        links = [qualname]
        seen = {qualname}
        cur = table.get(qualname)
        while cur is not None and cur not in seen and len(links) < limit:
            links.append(cur)
            seen.add(cur)
            cur = table.get(cur)
        return list(reversed(links))


def _is_async_seed(fn: FunctionInfo) -> bool:
    if fn.is_async:
        return True
    # scheduler quanta and frame handlers execute on the loop thread when
    # the service hosts the engine (service._drive -> scheduler.pass_once)
    return fn.name == "run_once" or (fn.cls and fn.name.startswith("_h_"))


def _is_engine_seed(fn: FunctionInfo) -> bool:
    return fn.name == "run_once" or (fn.cls and fn.name.startswith("_h_"))


def _closure(model: ProjectModel, seeds):
    table: dict = {fn.qualname: None for fn in seeds}
    queue = deque(table)
    while queue:
        qual = queue.popleft()
        fn = model.functions.get(qual)
        if fn is None:
            continue
        for call in fn.calls:
            for target in call.targets:
                if target not in table:
                    table[target] = qual
                    queue.append(target)
    return table


def infer_contexts(model: ProjectModel) -> Contexts:
    ctx = Contexts(model=model)
    async_seeds = [f for f in model.functions.values() if _is_async_seed(f)]
    engine_seeds = [f for f in model.functions.values() if _is_engine_seed(f)]
    ctx.async_reachable = _closure(model, async_seeds)
    ctx.engine_reachable = _closure(model, engine_seeds)
    ctx.boundary_sinks = _sinks(model)
    return ctx


def _sinks(model: ProjectModel) -> dict:
    sinks: dict = {}
    for fn in model.functions.values():
        pickled = set()
        for call in fn.calls:
            if call.external not in ("pickle.dumps", "pickle.dump"):
                continue
            for arg in call.node.args:
                if isinstance(arg, ast.Name) and arg.id in fn.params:
                    pickled.add(arg.id)
        if pickled:
            sinks[fn.qualname] = pickled
    return sinks
