"""tcqguard: whole-program concurrency & boundary analysis (TCQ7xx).

The guard complements the per-file linter in :mod:`repro.analysis.lint`
with cross-module reasoning: one parse of the whole tree builds a
project model (imports, symbols, a conservative call graph), context
inference marks what runs on the event loop, inside engine quanta, or
across the process boundary, and the TCQ701–705 rules evaluate hazards
against those contexts.  See :mod:`repro.analysis.guard.model` for the
resolution tiers and :mod:`repro.analysis.guard.rules` for precision
choices.

Usage::

    from repro.analysis.guard import guard_paths
    result = guard_paths(["src/repro"])
    for diag in result.diagnostics:
        print(diag.render())
"""

from __future__ import annotations

from .contexts import Contexts, infer_contexts
from .model import ProjectModel, build_model, iter_module_files
from .rules import GuardResult, run_rules

__all__ = [
    "Contexts",
    "GuardResult",
    "ProjectModel",
    "build_model",
    "guard_paths",
    "infer_contexts",
    "iter_module_files",
    "run_rules",
]


def guard_paths(paths) -> GuardResult:
    """Run the full TCQ7xx pass over the given roots (dirs or files)."""
    model = build_model(list(paths))
    ctx = infer_contexts(model)
    return run_rules(model, ctx)
