"""The TCQ7xx rule family, evaluated over a :class:`ProjectModel`.

Each rule walks the model (not raw files), so a finding can say *why*
a line is dangerous — e.g. the call chain that makes a blocking call
event-loop work.  Findings honour ``# tcq: allow[TCQ70x] reason``
comments on the offending line (or the enclosing ``def``/``class``
line for function-granular findings).

Precision choices, deliberately conservative in both directions:

* TCQ701 ignores ``open()`` (the spill paths do short local file IO by
  design) and only flags ``.join(...)``/``.poll(...)`` forms that can
  actually park: a ``timeout=`` kwarg on join, a positive or symbolic
  timeout on poll (``poll(0)`` is a non-blocking probe).
* TCQ703 targets module-level *container* globals (list/dict/set/deque
  literals or constructors).  Instance singletons like the telemetry
  TOTALS objects are excluded: they are the sanctioned aggregation
  idiom, published through registry collectors.
* TCQ705 resolves imports before flagging, so project-local classes
  that merely share a name with telemetry kinds (``TallyCounter``,
  ``StabilityCounter``) stay out of scope.
"""

from __future__ import annotations

import ast

from ..report import Diagnostic
from .contexts import Contexts
from .model import CallSite, FunctionInfo, ModuleInfo, ProjectModel, _dotted

__all__ = ["run_rules", "GuardResult"]


class GuardResult:
    """Findings plus the suppression bookkeeping the CLI reports."""

    def __init__(self, diagnostics, suppressed: int):
        self.diagnostics = list(diagnostics)
        self.suppressed = suppressed


# ---------------------------------------------------------------------------
# shared helpers


def _span_for(mod: ModuleInfo, node) -> tuple:
    """Character span of *node* inside the module source, for carets."""
    lines = mod.source.splitlines(keepends=True)
    if not (1 <= node.lineno <= len(lines)):
        return (-1, -1)
    start = sum(len(ln) for ln in lines[: node.lineno - 1]) + node.col_offset
    end_line = getattr(node, "end_lineno", node.lineno)
    end_col = getattr(node, "end_col_offset", node.col_offset + 1)
    if end_line == node.lineno:
        end = start - node.col_offset + end_col
    else:
        end = start + 1
    return (start, end)


def _emit(findings, mod: ModuleInfo, node, code: str, message: str,
          hint: str = "", anchor_lines=()):
    """Append a Diagnostic unless an allow comment covers it.

    *anchor_lines* are extra lines (e.g. the enclosing ``def``) where a
    suppression also counts.
    """
    for line in (node.lineno, *anchor_lines):
        if mod.suppressions.is_suppressed(line, code):
            return
    findings.append(Diagnostic(
        code=code, message=message, file=mod.file, line=node.lineno,
        span=_span_for(mod, node), source=mod.source, hint=hint,
    ))


def _fmt_chain(chain) -> str:
    return " -> ".join(q.rsplit(".", 2)[-1] if q.count(".") < 2
                       else ".".join(q.rsplit(".", 2)[-2:]) for q in chain)


# ---------------------------------------------------------------------------
# TCQ701 — blocking call reachable from async context


_BLOCK_EXACT = {
    "time.sleep": "time.sleep parks the whole event loop",
    "select.select": "select.select blocks the loop thread",
    "os.wait": "os.wait blocks until a child exits",
    "os.waitpid": "os.waitpid blocks until a child exits",
    "socket.create_connection": "synchronous connect blocks the loop",
    "multiprocessing.connection.wait": "connection.wait parks the loop "
                                       "until a worker pipe is readable",
}

_BLOCK_METHODS = {"recv", "recv_bytes", "recv_into", "accept"}


def _poll_blocks(call: ast.Call) -> bool:
    """``poll(0)`` is a probe; a positive or symbolic timeout parks."""
    args = list(call.args) + [kw.value for kw in call.keywords
                              if kw.arg == "timeout"]
    if not args:
        return False  # Connection.poll() defaults to an immediate probe
    arg = args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, (int, float)):
        return arg.value > 0
    return True  # symbolic timeout: assume it can park


def _join_blocks(call: ast.Call) -> bool:
    """str.join never takes kwargs; thread/process join with a timeout
    (or bare, on an attribute receiver) is the blocking variant we can
    identify without type info."""
    return any(kw.arg == "timeout" for kw in call.keywords)


def _blocking_reason(site: CallSite) -> str | None:
    if site.awaited or site.targets:
        return None
    if site.external in _BLOCK_EXACT:
        return _BLOCK_EXACT[site.external]
    if site.external and site.external.startswith("subprocess."):
        return "subprocess calls block on the child process"
    if site.attr in _BLOCK_METHODS:
        return f".{site.attr}() is synchronous IO and can park the loop"
    if site.attr == "poll" and _poll_blocks(site.node):
        return "poll with a timeout parks the calling thread"
    if site.attr == "join" and _join_blocks(site.node):
        return "join(timeout=...) parks the calling thread"
    if site.attr == "wait" and site.node.keywords and _join_blocks(site.node):
        return "wait(timeout=...) parks the calling thread"
    return None


def _check_tcq701(model: ProjectModel, ctx: Contexts, findings):
    for qual, _pred in ctx.async_reachable.items():
        fn = model.functions.get(qual)
        if fn is None:
            continue
        mod = model.module_of(fn)
        for site in fn.calls:
            reason = _blocking_reason(site)
            if reason is None:
                continue
            chain = ctx.chain(ctx.async_reachable, qual)
            what = site.external or f".{site.attr}()"
            _emit(
                findings, mod, site.node, "TCQ701",
                f"blocking call {what} reachable from async context "
                f"({_fmt_chain(chain)}): {reason}",
                hint="move the wait off the loop thread, make it a "
                     "non-blocking probe, or justify with "
                     "# tcq: allow[TCQ701] <reason>",
                anchor_lines=(fn.lineno,),
            )


# ---------------------------------------------------------------------------
# TCQ702 — unpicklable value into a cross-process payload


def _unpicklable_reason(arg, fn: FunctionInfo) -> str | None:
    if isinstance(arg, ast.Lambda):
        return "a lambda cannot be pickled"
    if isinstance(arg, ast.Name):
        local = fn.local_callables.get(arg.id)
        if isinstance(local, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return f"nested function {arg.id!r} cannot be pickled"
        if isinstance(local, ast.ClassDef):
            return f"local class {arg.id!r} cannot be pickled"
        if fn.local_types.get(arg.id) == "open":
            return f"{arg.id!r} holds an open file handle"
    if isinstance(arg, ast.Call) and _dotted(arg.func) == "open":
        return "an open file handle cannot be pickled"
    return None


def _check_tcq702(model: ProjectModel, ctx: Contexts, findings):
    for fn in model.functions.values():
        mod = model.module_of(fn)
        for site in fn.calls:
            # direct pickling of an obviously unpicklable expression
            if site.external in ("pickle.dumps", "pickle.dump"):
                for arg in site.node.args:
                    reason = _unpicklable_reason(arg, fn)
                    if reason:
                        _emit(findings, mod, site.node, "TCQ702",
                              f"unpicklable value pickled directly: {reason}",
                              hint="cross-process payloads must survive a "
                                   "pickle round-trip",
                              anchor_lines=(fn.lineno,))
                continue
            # one-hop interprocedural: argument flows into a sink param
            for target in site.targets:
                pickled_params = ctx.boundary_sinks.get(target)
                if not pickled_params:
                    continue
                target_fn = model.functions[target]
                params = [p for p in target_fn.params if p != "self"]
                for idx, arg in enumerate(site.node.args):
                    if idx >= len(params) or params[idx] not in pickled_params:
                        continue
                    reason = _unpicklable_reason(arg, fn)
                    if reason:
                        _emit(findings, mod, site.node, "TCQ702",
                              f"unpicklable value reaches cross-process "
                              f"payload via {target.rsplit('.', 1)[-1]}(): "
                              f"{reason}",
                              hint="ship a module-level callable or plain "
                                   "data instead",
                              anchor_lines=(fn.lineno,))
                for kw in site.node.keywords:
                    if kw.arg not in pickled_params:
                        continue
                    reason = _unpicklable_reason(kw.value, fn)
                    if reason:
                        _emit(findings, mod, site.node, "TCQ702",
                              f"unpicklable value reaches cross-process "
                              f"payload via {target.rsplit('.', 1)[-1]}(): "
                              f"{reason}",
                              hint="ship a module-level callable or plain "
                                   "data instead",
                              anchor_lines=(fn.lineno,))


# ---------------------------------------------------------------------------
# TCQ703 — module-level mutable global mutated from an engine path


_MUTATORS = {"append", "extend", "add", "update", "pop", "popleft", "clear",
             "remove", "insert", "setdefault", "appendleft", "discard"}


def _global_mutations(fn: FunctionInfo, mod: ModuleInfo, model: ProjectModel):
    """Yield (node, global_name) for mutations of module-level containers.

    Tracks simple local aliases (``totals = GLOBAL``) and names imported
    from sibling project modules.
    """

    def _container_origin(name: str):
        # a local assignment shadows the global unless it *is* the alias
        if name in mod.container_globals:
            return mod.name, name
        target = mod.imports.get(name)
        if target:
            tmod_name, _, gname = target.rpartition(".")
            tmod = model.modules.get(tmod_name)
            if tmod and gname in tmod.container_globals:
                return tmod_name, gname
        return None

    aliases: dict = {}
    locals_assigned = set()
    for top in (fn.node.body if hasattr(fn.node, "body") else []):
        for sub in ast.walk(top):
            if isinstance(sub, ast.Assign):
                for tgt in sub.targets:
                    if isinstance(tgt, ast.Name):
                        locals_assigned.add(tgt.id)
                        if (isinstance(sub.value, ast.Name)
                                and _container_origin(sub.value.id)):
                            aliases[tgt.id] = sub.value.id

    def _resolve(name: str):
        if name in aliases:
            name = aliases[name]
        elif name in locals_assigned:
            return None  # shadowed by a local rebinding
        return _container_origin(name)

    for top in (fn.node.body if hasattr(fn.node, "body") else []):
        for sub in ast.walk(top):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                recv = sub.func.value
                if isinstance(recv, ast.Name) and sub.func.attr in _MUTATORS:
                    origin = _resolve(recv.id)
                    if origin:
                        yield sub, origin
            elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for tgt in targets:
                    if (isinstance(tgt, ast.Subscript)
                            and isinstance(tgt.value, ast.Name)):
                        origin = _resolve(tgt.value.id)
                        if origin:
                            yield sub, origin
            elif isinstance(sub, ast.Delete):
                for tgt in sub.targets:
                    if (isinstance(tgt, ast.Subscript)
                            and isinstance(tgt.value, ast.Name)):
                        origin = _resolve(tgt.value.id)
                        if origin:
                            yield sub, origin


def _check_tcq703(model: ProjectModel, ctx: Contexts, findings):
    for qual in ctx.engine_reachable:
        fn = model.functions.get(qual)
        if fn is None:
            continue
        mod = model.module_of(fn)
        for node, (owner_mod, gname) in _global_mutations(fn, mod, model):
            chain = ctx.chain(ctx.engine_reachable, qual)
            _emit(findings, mod, node, "TCQ703",
                  f"module-level container {owner_mod}.{gname} mutated on an "
                  f"engine path ({_fmt_chain(chain)}): units interleave, so "
                  f"shared mutable state is a race candidate",
                  hint="pass state through the unit, or justify with "
                       "# tcq: allow[TCQ703] <reason>",
                  anchor_lines=(fn.lineno,))


# ---------------------------------------------------------------------------
# TCQ704 — asyncio outside repro.net


def _check_tcq704(model: ProjectModel, findings):
    for mod in model.modules.values():
        if "net" in mod.name.split("."):
            continue
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module or ""]
            else:
                continue
            if any(n == "asyncio" or n.startswith("asyncio.") for n in names):
                _emit(findings, mod, node, "TCQ704",
                      f"asyncio used in {mod.name}: event-loop primitives "
                      f"belong to the repro.net front door",
                      hint="hand work to the net service, or use the "
                           "cooperative scheduler")


# ---------------------------------------------------------------------------
# TCQ705 — telemetry series constructed outside the registry helpers


_SERIES_KINDS = {"Counter", "Gauge", "Histogram"}


def _check_tcq705(model: ProjectModel, findings):
    for mod in model.modules.values():
        if mod.name.endswith("telemetry"):
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if not name:
                continue
            head, _, last = name.rpartition(".")
            bare = last or name
            if bare not in _SERIES_KINDS:
                continue
            target = mod.imports.get(name.split(".")[0])
            if head:
                dotted_target = (target + "." + bare) if target else name
            else:
                dotted_target = target
            if not dotted_target:
                continue
            owner = dotted_target.rsplit(".", 1)[0]
            if not owner.endswith("telemetry"):
                continue
            _emit(findings, mod, node, "TCQ705",
                  f"telemetry series {bare} constructed directly in "
                  f"{mod.name}: series must come from the registry "
                  f"helpers so collectors and scrapes see them",
                  hint="use get_registry().counter/gauge/histogram")


# ---------------------------------------------------------------------------
# entry point


def run_rules(model: ProjectModel, ctx: Contexts) -> GuardResult:
    findings: list = []
    _check_tcq701(model, ctx, findings)
    _check_tcq702(model, ctx, findings)
    _check_tcq703(model, ctx, findings)
    _check_tcq704(model, findings)
    _check_tcq705(model, findings)
    findings.sort(key=lambda d: (d.file, d.line, d.code))
    suppressed = sum(m.suppressions.used_count for m in model.modules.values())
    return GuardResult(findings, suppressed)
