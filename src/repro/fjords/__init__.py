"""fjords subpackage of the TelegraphCQ reproduction."""
