"""The Fjord module contract.

Every dataflow operator in the system — relational operators, SteMs,
eddies, ingress wrappers, Flux, Juggle — implements this small interface.
A module:

* owns zero or more *input ports* and *output ports*, each bound to a
  :class:`~repro.fjords.queues.FjordQueue` by the enclosing
  :class:`~repro.fjords.fjord.Fjord`;
* is driven by ``run_once()``, which must be **non-blocking**: consume at
  most a bounded amount of input, emit results, and return a
  :class:`StepResult` telling the scheduler whether useful work happened.

Together with the ``ready()`` / ``pressure()`` hints below, every module
satisfies the unified :class:`repro.sched.protocol.Schedulable`
protocol, so any module can be hosted directly by a
:class:`repro.sched.Scheduler` under any policy.

Modules are agnostic to push vs pull: they always use the non-blocking
queue API, and the queue flavour decides whether a pop pumps upstream.
That is exactly the design point of Section 2.3.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.core.tuples import Punctuation, Tuple, TupleBatch, is_eos
from repro.errors import PlanError
from repro.fjords.queues import EMPTY, FjordQueue
import repro.monitor.tracing as tracing
# StepResult is canonically defined by the scheduler protocol now; it is
# re-exported here because every module author imports it from this
# module historically.
from repro.sched.protocol import StepResult

__all__ = ["CollectingSink", "Module", "SinkModule", "SourceModule",
           "StepResult"]


class Module:
    """Base class for all dataflow modules.

    Subclasses usually override :meth:`process`, which maps one input
    item to zero or more outputs; modules needing full control (eddies,
    Flux) override :meth:`run_once` instead.
    """

    #: How many items to consume per scheduling quantum by default.
    DEFAULT_BATCH = 16

    def __init__(self, name: str = "", arity_in: int = 1, arity_out: int = 1):
        self.name = name or type(self).__name__
        self.inputs: List[Optional[FjordQueue]] = [None] * arity_in
        self.outputs: List[Optional[FjordQueue]] = [None] * arity_out
        self.finished = False
        self._eos_seen = 0
        self.tuples_in = 0
        self.tuples_out = 0

    # -- wiring ----------------------------------------------------------
    def bind_input(self, port: int, queue: FjordQueue) -> None:
        if port >= len(self.inputs):
            raise PlanError(
                f"{self.name} has {len(self.inputs)} input ports, "
                f"cannot bind port {port}")
        self.inputs[port] = queue

    def bind_output(self, port: int, queue: FjordQueue) -> None:
        if port >= len(self.outputs):
            raise PlanError(
                f"{self.name} has {len(self.outputs)} output ports, "
                f"cannot bind port {port}")
        self.outputs[port] = queue

    def _require_wired(self) -> None:
        for i, q in enumerate(self.inputs):
            if q is None:
                raise PlanError(f"{self.name}: input port {i} is unbound")
        for i, q in enumerate(self.outputs):
            if q is None:
                raise PlanError(f"{self.name}: output port {i} is unbound")

    # -- scheduler hints ---------------------------------------------------
    def ready(self) -> bool:
        """Cheap Schedulable hint: is there input to consume right now?

        Policies that poll regardless (round-robin) ignore this; the
        pressure-aware policy and the idle detector use it to avoid
        burning quanta on provably idle modules.
        """
        return any(q is not None and q.has_ready_data()
                   for q in self.inputs)

    def pressure(self) -> float:
        """Downstream occupancy in [0, 1]: the max fill fraction of the
        module's *bounded* output queues (unbounded queues exert no
        backpressure).  1.0 means a push would be refused or dropped."""
        worst = 0.0
        for q in self.outputs:
            if q is not None and q.capacity:
                frac = q.fill_fraction()
                if frac > worst:
                    worst = frac
        return worst

    # -- emission helpers --------------------------------------------------
    def emit(self, item: Any, port: int = 0) -> bool:
        queue = self.outputs[port]
        if queue is None:
            raise PlanError(f"{self.name}: output port {port} is unbound")
        if isinstance(item, Tuple):
            self.tuples_out += 1
        elif isinstance(item, TupleBatch):
            # A batch moves as ONE queue item but counts as its rows.
            self.tuples_out += len(item)
        return queue.push(item)

    def emit_all(self, items: Iterable[Any], port: int = 0) -> None:
        for item in items:
            self.emit(item, port)

    # -- the scheduling hook ----------------------------------------------
    def run_once(self, batch: Optional[int] = None) -> StepResult:
        """Consume up to ``batch`` items from input port 0, route each
        through :meth:`process`, and forward punctuation.

        End-of-stream handling: once EOS has been seen on every input
        port, :meth:`on_end_of_stream` runs (operators flush state there)
        and EOS is propagated downstream exactly once.
        """
        if self.finished:
            return StepResult.DONE
        budget = batch if batch is not None else self.DEFAULT_BATCH
        worked = False
        for _ in range(budget):
            port, item = self._next_input()
            if item is EMPTY:
                break
            worked = True
            if is_eos(item):
                self._eos_seen += 1
                if self._eos_seen >= len(self.inputs):
                    self._finish()
                    return StepResult.DONE
                continue
            if isinstance(item, Punctuation):
                self.on_punctuation(item, port)
                continue
            if isinstance(item, TupleBatch):
                # Batch-granularity transfer: one queue item, many rows.
                self.tuples_in += len(item)
                for out in self.process_batch(item, port):
                    self.emit(out)
                continue
            self.tuples_in += 1
            for out in self.process(item, port):
                self.emit(out)
        return StepResult.BUSY if worked else StepResult.IDLE

    def _next_input(self) -> "tuple[int, Any]":
        """Round-robin over input ports; returns (port, item)."""
        for port, queue in enumerate(self.inputs):
            if queue is None:
                continue
            item = queue.pop()
            if item is not EMPTY:
                return port, item
        return -1, EMPTY

    def _finish(self) -> None:
        for out in self.on_end_of_stream():
            self.emit(out)
        self.finished = True
        for port in range(len(self.outputs)):
            if self.outputs[port] is not None:
                self.emit(Punctuation.eos(self.name), port)

    # -- operator hooks ----------------------------------------------------
    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        """Map one input tuple to zero or more output tuples."""
        raise NotImplementedError

    def process_batch(self, batch: TupleBatch, port: int) -> Iterable[Any]:
        """Map one input batch to zero or more outputs.

        The default degenerates to a row loop over :meth:`process`, so
        every module accepts batches; vectorized modules (eddies,
        Select) override with real kernels and may emit whole batches.
        """
        out: List[Any] = []
        for t in batch.materialize():
            out.extend(self.process(t, port))
        return out

    def on_punctuation(self, punctuation: Punctuation, port: int) -> None:
        """Non-EOS punctuation (e.g. window boundaries) forwards by
        default so downstream modules see the same control stream."""
        self.emit(punctuation)

    def on_end_of_stream(self) -> Iterable[Tuple]:
        """Flush hook: blocking-by-nature operators (sort, aggregation
        over a closed input) emit their buffered results here."""
        return ()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class SourceModule(Module):
    """A module with no inputs that produces tuples on demand.

    ``generate()`` yields the next batch (possibly empty); returning an
    empty batch while :attr:`exhausted` is False means "no data right
    now" (a quiet push source).
    """

    def __init__(self, name: str = ""):
        super().__init__(name=name, arity_in=0, arity_out=1)
        self.exhausted = False
        # Sources are the dataflow's ingress door: the shared
        # IngressPoint handles trace sampling so standalone fjord plans
        # get end-to-end traces too.  Deferred import: fjords is a
        # lower layer than ingress.
        from repro.ingress.ingress import IngressPoint
        self.point = IngressPoint(self.name, deliver=self.emit)

    def ready(self) -> bool:
        # A source must be polled while live: only it knows whether the
        # outside world has data (a quiet push source still returns
        # IDLE, which the quiescence detector handles).
        return not self.finished

    def generate(self, batch: int) -> Iterable[Any]:
        raise NotImplementedError

    def run_once(self, batch: Optional[int] = None) -> StepResult:
        if self.finished:
            return StepResult.DONE
        budget = batch if batch is not None else self.DEFAULT_BATCH
        produced = False
        for item in self.generate(budget):
            produced = True
            if isinstance(item, Tuple):
                self.point.admit_one(item)
            else:
                # Punctuation and batches bypass the ingress door: they
                # are control flow / pre-traced, not fresh arrivals.
                self.emit(item)
        if self.exhausted:
            self._finish()
            return StepResult.DONE
        return StepResult.BUSY if produced else StepResult.IDLE


class SinkModule(Module):
    """Collects everything that reaches it; the client-side endpoint.

    The engine's per-client output queues (Figure 5) are SinkModules in
    this reproduction; tests read :attr:`results`.
    """

    def __init__(self, name: str = ""):
        super().__init__(name=name, arity_in=1, arity_out=0)
        self.results: List[Tuple] = []
        self.punctuations: List[Punctuation] = []

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        self.results.append(item)
        if tracing.TRACER.active:
            tracing.note_hop(item, "egress", self.name)
            tracing.finish_item(item, self.name)
        return ()

    def on_punctuation(self, punctuation: Punctuation, port: int) -> None:
        self.punctuations.append(punctuation)

    def _finish(self) -> None:
        # No outputs to propagate EOS to.
        self.finished = True

    def windows(self) -> List[List[Tuple]]:
        """Split results into the per-window sets delimited by
        WINDOW_BOUNDARY punctuation (the paper's "sequence of sets")."""
        # Punctuation ordering relative to results is preserved only if
        # the producer interleaves them; SinkModule records arrival order
        # in a merged log for that purpose.
        raise NotImplementedError(
            "use CollectingSink for windowed result retrieval")


class CollectingSink(Module):
    """A sink that preserves the interleaving of tuples and punctuation,
    exposing results as the paper's sequence-of-sets."""

    def __init__(self, name: str = ""):
        super().__init__(name=name, arity_in=1, arity_out=0)
        self.log: List[Any] = []

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        self.log.append(item)
        if tracing.TRACER.active:
            tracing.note_hop(item, "egress", self.name)
            tracing.finish_item(item, self.name)
        return ()

    def on_punctuation(self, punctuation: Punctuation, port: int) -> None:
        self.log.append(punctuation)

    def _finish(self) -> None:
        self.finished = True

    @property
    def results(self) -> List[Tuple]:
        return [x for x in self.log if isinstance(x, Tuple)]

    def windows(self) -> List[List[Tuple]]:
        """Group logged tuples into windows separated by boundary
        punctuation; a trailing open window is included if non-empty."""
        out: List[List[Tuple]] = []
        current: List[Tuple] = []
        for item in self.log:
            if isinstance(item, Punctuation) and \
                    item.kind == Punctuation.WINDOW_BOUNDARY:
                out.append(current)
                current = []
            elif isinstance(item, Tuple):
                current.append(item)
        if current:
            out.append(current)
        return out
