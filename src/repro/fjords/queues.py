"""Fjord queues: the push/pull connective tissue between modules.

Section 2.3 of the paper describes Fjords as an API that lets pairs of
modules be connected by *various types of queues* so that a single plan
can mix streaming (push) and static (pull) sources:

* a **push queue** uses non-blocking enqueue and dequeue — when the queue
  is empty the consumer simply gets "no data" back and can yield;
* a **pull queue** uses blocking semantics — the consumer's dequeue
  drives the producer until data appears (the iterator model);
* **Exchange** semantics (blocking dequeue, non-blocking enqueue) fall
  out as a combination.

This is a single-threaded, cooperatively scheduled engine, so "blocking"
is modelled by *pumping*: a pull queue owns a callback that runs the
producer until it yields data or declares end-of-stream.  Every queue
keeps counters (enqueued/dequeued/dropped/high-water) that the monitoring
layer and the QoS load-shedder read.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Any, Callable, Deque, Iterable, Optional

from repro.errors import PlanError
from repro.monitor import telemetry
import repro.monitor.tracing as tracing

#: Returned by non-blocking dequeues when no data is available.  A unique
#: sentinel (not None) so that queues can carry None as a legitimate value.
EMPTY = object()


class _FjordTotals:
    """Process-wide monotonic queue counters.

    Queues are created and destroyed constantly (every cursor owns one),
    so per-instance telemetry would churn; the hot enqueue/dequeue path
    instead bumps these plain integers, and a global collector publishes
    them — plus per-queue depths for the queues still alive — whenever a
    snapshot is taken.
    """

    __slots__ = ("enqueued", "dequeued", "dropped", "refused", "stalls")

    def __init__(self) -> None:
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.refused = 0
        self.stalls = 0


TOTALS = _FjordTotals()
_LIVE_QUEUES: "weakref.WeakSet[FjordQueue]" = weakref.WeakSet()


def _collect_fjord_telemetry(reg: "telemetry.MetricRegistry") -> None:
    reg.counter("tcq_fjords_enqueued_total",
                "Items accepted across every fjord queue").set_total(
        TOTALS.enqueued)
    reg.counter("tcq_fjords_dequeued_total",
                "Items drained across every fjord queue").set_total(
        TOTALS.dequeued)
    reg.counter("tcq_fjords_dropped_total",
                "Items dropped by bounded queues").set_total(TOTALS.dropped)
    reg.counter("tcq_fjords_refused_total",
                "Backpressure refusals by bounded queues").set_total(
        TOTALS.refused)
    reg.counter("tcq_fjords_stalls_total",
                "Pull-queue pumps that ended without data").set_total(
        TOTALS.stalls)
    depth = reg.gauge("tcq_fjords_queue_depth",
                      "Current depth of live named queues", ("queue",),
                      collected=True)
    fill = reg.gauge("tcq_fjords_queue_fill_fraction",
                     "Occupancy of live named queues", ("queue",),
                     collected=True)
    live = total_depth = 0
    for q in list(_LIVE_QUEUES):
        live += 1
        total_depth += len(q)
        if q.name:
            depth.labels(q.name).set(len(q))
            fill.labels(q.name).set(q.fill_fraction())
    reg.gauge("tcq_fjords_live_queues", "Queues currently alive").set(live)
    reg.gauge("tcq_fjords_buffered_items",
              "Items buffered across live queues").set(total_depth)


telemetry.register_global_collector(_collect_fjord_telemetry)


class QueueStats:
    """Counters shared by every queue flavour."""

    __slots__ = ("enqueued", "dequeued", "dropped", "high_water")

    def __init__(self) -> None:
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.high_water = 0

    def snapshot(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "dropped": self.dropped,
            "high_water": self.high_water,
        }


class FjordQueue:
    """Base queue: bounded FIFO with non-blocking operations.

    ``capacity`` of 0 means unbounded.  Subclasses choose the semantics
    of an enqueue against a full queue and a dequeue against an empty
    one.
    """

    #: What to do when a bounded queue is full: "refuse" returns False
    #: from push (backpressure), "drop_newest" discards the incoming
    #: item, "drop_oldest" evicts the head to make room.
    OVERFLOW_POLICIES = ("refuse", "drop_newest", "drop_oldest")

    def __init__(self, capacity: int = 0, overflow: str = "refuse",
                 name: str = ""):
        if overflow not in self.OVERFLOW_POLICIES:
            raise PlanError(f"unknown overflow policy {overflow!r}")
        self.capacity = capacity
        self.overflow = overflow
        self.name = name
        self.stats = QueueStats()
        self._items: Deque[Any] = deque()
        _LIVE_QUEUES.add(self)

    # -- producer side ---------------------------------------------------
    def push(self, item: Any) -> bool:
        """Non-blocking enqueue.  Returns False iff the item was refused
        or dropped (so producers can implement backpressure)."""
        if self.capacity and len(self._items) >= self.capacity:
            if self.overflow == "refuse":
                TOTALS.refused += 1
                return False
            if self.overflow == "drop_newest":
                self.stats.dropped += 1
                TOTALS.dropped += 1
                return False
            # drop_oldest: evict head, admit the new item.
            self._items.popleft()
            self.stats.dropped += 1
            TOTALS.dropped += 1
        self._items.append(item)
        self.stats.enqueued += 1
        TOTALS.enqueued += 1
        if len(self._items) > self.stats.high_water:
            self.stats.high_water = len(self._items)
        # One module-attribute + bool test when tracing is off; the item
        # is only inspected for a trace once a tracer is active.
        if tracing.TRACER.active:
            tracing.note_hop(item, "queue", self.name or "anon", "in")
        return True

    def push_all(self, items: Iterable[Any]) -> int:
        """Enqueue each item; returns how many were accepted."""
        accepted = 0
        for item in items:
            if self.push(item):
                accepted += 1
        return accepted

    def push_many(self, items: Iterable[Any]) -> int:
        """Bulk enqueue: one deque extend and one counter update for the
        whole batch on the unbounded fast path (the vectorized pipeline's
        transfer granularity); bounded queues keep exact per-item
        overflow semantics."""
        if self.capacity:
            return self.push_all(items)
        items = items if isinstance(items, (list, tuple)) else list(items)
        n = len(items)
        if not n:
            return 0
        self._items.extend(items)
        self.stats.enqueued += n
        TOTALS.enqueued += n
        depth = len(self._items)
        if depth > self.stats.high_water:
            self.stats.high_water = depth
        if tracing.TRACER.active:
            site = self.name or "anon"
            for item in items:
                tracing.note_hop(item, "queue", site, "in")
        return n

    # -- consumer side ---------------------------------------------------
    def pop(self) -> Any:
        """Non-blocking dequeue: returns :data:`EMPTY` when nothing is
        buffered (push semantics — control returns to the consumer)."""
        if not self._items:
            return EMPTY
        self.stats.dequeued += 1
        TOTALS.dequeued += 1
        item = self._items.popleft()
        if tracing.TRACER.active:
            tracing.note_hop(item, "queue", self.name or "anon", "out")
        return item

    def pop_many(self, max_items: int) -> list:
        """Bulk dequeue: up to ``max_items`` items with one counter
        update.  Returns a (possibly empty) list — the batch-granularity
        mirror of :meth:`pop`."""
        items = self._items
        n = min(max_items, len(items))
        if n <= 0:
            return []
        popleft = items.popleft
        out = [popleft() for _ in range(n)]
        self.stats.dequeued += n
        TOTALS.dequeued += n
        if tracing.TRACER.active:
            site = self.name or "anon"
            for item in out:
                tracing.note_hop(item, "queue", site, "out")
        return out

    def peek(self) -> Any:
        return self._items[0] if self._items else EMPTY

    def has_ready_data(self) -> bool:
        """Cheap scheduler hint: could a pop return data *right now*
        without running anything else?  Pull queues override (their pump
        can manufacture data on demand)."""
        return bool(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:  # truthiness == "has data", len may be 0
        return True

    @property
    def is_full(self) -> bool:
        return bool(self.capacity) and len(self._items) >= self.capacity

    def fill_fraction(self) -> float:
        """Occupancy in [0, 1]; unbounded queues report 0 when empty and
        scale against the observed high-water mark instead."""
        if self.capacity:
            return len(self._items) / self.capacity
        if not self.stats.high_water:
            return 0.0
        return len(self._items) / self.stats.high_water

    def __repr__(self) -> str:
        cap = self.capacity or "inf"
        return (f"{type(self).__name__}({self.name or 'anon'}, "
                f"len={len(self._items)}, cap={cap})")


class PushQueue(FjordQueue):
    """Non-blocking enqueue *and* dequeue — the streaming connection.

    Exactly the base behaviour; the class exists so plans read naturally
    (``PushQueue`` vs ``PullQueue`` declares intent).
    """


class PullQueue(FjordQueue):
    """Blocking-dequeue semantics via a producer pump.

    When the consumer pops an empty queue, the queue invokes its
    ``producer`` callback repeatedly; the callback should run the
    producing module one step and return True while it may still yield
    data.  This reproduces the iterator model on top of the same queue
    machinery, which is the point of Fjords: modules don't know which
    flavour they are attached to.
    """

    def __init__(self, capacity: int = 0, overflow: str = "refuse",
                 name: str = "", producer: Optional[Callable[[], bool]] = None,
                 max_pump: int = 1_000_000):
        super().__init__(capacity=capacity, overflow=overflow, name=name)
        self.producer = producer
        self.max_pump = max_pump

    def pop(self) -> Any:
        if not self._items and self.producer is not None:
            pumps = 0
            while not self._items and pumps < self.max_pump:
                alive = self.producer()
                pumps += 1
                if not alive:
                    break
            if not self._items:
                # The pump ran dry: the consumer blocked for nothing.
                TOTALS.stalls += 1
        return super().pop()

    def pop_many(self, max_items: int) -> list:
        if not self._items and self.producer is not None:
            first = self.pop()       # runs the pump (and counts a stall)
            if first is EMPTY:
                return []
            return [first] + super().pop_many(max_items - 1)
        return super().pop_many(max_items)

    def has_ready_data(self) -> bool:
        # An attached pump may produce on demand, so the consumer must
        # be considered runnable even while the buffer is empty.
        return bool(self._items) or self.producer is not None


class ExchangeQueue(PullQueue):
    """Graefe-style Exchange semantics: producers push asynchronously
    (non-blocking enqueue) while the consumer blocks on dequeue.

    In our cooperative model this is a PullQueue whose pump runs the
    producer side of an exchange; it exists mainly so Flux, which the
    paper calls "a generalization of the Exchange module", has the
    precise primitive to generalise.
    """
