"""The Fjord: a dataflow graph of modules connected by queues, driven by
the unified scheduler core.

A Fjord owns the wiring (``connect``) and delegates the run loop
(``step`` / ``run`` / ``run_until_finished``) to a
:class:`repro.sched.Scheduler` hosting its modules — round-robin by
default, bit-compatible with the historical hand-rolled loop, but any
:mod:`repro.sched.policy` (deficit round robin, pressure-aware) and the
§4.3 adaptive quantum controller plug in via the constructor.

A Fjord is itself a :class:`~repro.sched.protocol.Schedulable`
(``run_once`` / ``ready`` / ``pressure`` / ``finished``), which is how
the multi-query executor in :mod:`repro.core.executor` hosts many Fjords
as Dispatch Units inside scheduler-controlled EOs — the single-plan
analogue of the TelegraphCQ Execution Object.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Type

from repro.errors import PlanError
from repro.fjords.module import Module, StepResult
from repro.fjords.queues import FjordQueue, PushQueue
from repro.sched.quantum import AdaptiveQuantumController
from repro.sched.scheduler import Scheduler, SchedulerStall


class Fjord:
    """A runnable dataflow graph."""

    def __init__(self, name: str = "fjord", default_capacity: int = 0,
                 policy: Any = "round_robin",
                 quantum_controller: Optional[AdaptiveQuantumController]
                 = None,
                 sched_telemetry: bool = False):
        self.name = name
        self.default_capacity = default_capacity
        self.modules: List[Module] = []
        self.queues: List[FjordQueue] = []
        self._names: Dict[str, Module] = {}
        self._policy = policy
        self._quantum_controller = quantum_controller
        self._sched_telemetry = sched_telemetry
        self._scheduler: Optional[Scheduler] = None

    # -- construction ------------------------------------------------------
    def add(self, module: Module) -> Module:
        """Register a module; names must be unique within the Fjord."""
        if module.name in self._names:
            raise PlanError(f"duplicate module name {module.name!r}")
        self.modules.append(module)
        self._names[module.name] = module
        if self._scheduler is not None:
            self._scheduler.add(module)
        return module

    def connect(self, producer: Module, consumer: Module,
                out_port: int = 0, in_port: int = 0,
                queue_cls: Type[FjordQueue] = PushQueue,
                capacity: Optional[int] = None,
                overflow: str = "refuse") -> FjordQueue:
        """Wire ``producer.out_port`` to ``consumer.in_port`` with a fresh
        queue of the requested flavour and return the queue."""
        for m in (producer, consumer):
            if m not in self.modules:
                self.add(m)
        cap = self.default_capacity if capacity is None else capacity
        queue = queue_cls(capacity=cap, overflow=overflow,
                          name=f"{producer.name}->{consumer.name}")
        producer.bind_output(out_port, queue)
        consumer.bind_input(in_port, queue)
        self.queues.append(queue)
        return queue

    def module(self, name: str) -> Module:
        try:
            return self._names[name]
        except KeyError:
            raise PlanError(f"no module named {name!r} in {self.name}") from None

    def validate(self) -> None:
        """Check every port is bound before running."""
        for m in self.modules:
            m._require_wired()

    def check(self):
        """Static reachability over the wiring: every module must be
        reachable from an ingress and reach an egress (``TCQ104``).

        Returns a :class:`repro.analysis.report.DiagnosticReport`;
        opt-in (``run`` does not call it) because partially-wired
        graphs are legal while under construction."""
        from repro.analysis.plan_check import check_fjord
        from repro.analysis.report import DiagnosticReport
        return DiagnosticReport(check_fjord(self))

    # -- the scheduler -----------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        """The Fjord's scheduler over its modules (built on first use;
        modules registered later join it automatically)."""
        if self._scheduler is None:
            sched = Scheduler(policy=self._policy,
                              name=f"fjord:{self.name}",
                              quantum_controller=self._quantum_controller,
                              telemetry=self._sched_telemetry)
            for m in self.modules:
                sched.add(m)
            self._scheduler = sched
        return self._scheduler

    # -- execution -----------------------------------------------------
    def step(self, batch: Optional[int] = None) -> StepResult:
        """One scheduling pass over the unfinished modules.

        Returns a :class:`StepResult` (truthy iff any module made
        progress, ``finished`` once EOS has fully propagated).
        """
        return self.scheduler.pass_once(batch)

    #: Schedulable alias: a Fjord can be hosted by another scheduler.
    run_once = step

    @property
    def finished(self) -> bool:
        return all(m.finished for m in self.modules)

    def ready(self) -> bool:
        """Cheap hint: any live module with consumable input or a live
        source that must be polled."""
        return any(not m.finished and m.ready() for m in self.modules)

    def pressure(self) -> float:
        """Occupancy of the Fjord's bounded queues (its own internal
        backpressure surface, seen from an enclosing scheduler)."""
        worst = 0.0
        for q in self.queues:
            if q.capacity:
                frac = q.fill_fraction()
                if frac > worst:
                    worst = frac
        return worst

    def run(self, max_steps: int = 1_000_000,
            batch: Optional[int] = None) -> int:
        """Run until quiescent (no module makes progress) or until
        ``max_steps`` scheduling passes have elapsed.

        Returns the number of passes taken.  A dataflow with live push
        sources never quiesces; cap it with ``max_steps`` or stop the
        sources first.
        """
        self.validate()
        return self.scheduler.run_until_quiescent(max_steps, batch)

    def run_until_finished(self, max_steps: int = 1_000_000,
                           batch: Optional[int] = None) -> int:
        """Run until *every* module reports finished (EOS fully
        propagated), raising :class:`PlanError` on stall."""
        self.validate()
        try:
            return self.scheduler.run_until_finished(max_steps, batch)
        except SchedulerStall:
            stuck = [m.name for m in self.modules if not m.finished]
            raise PlanError(
                f"{self.name}: modules {stuck} did not finish within "
                f"{max_steps} passes") from None

    # -- introspection ---------------------------------------------------
    def queue_stats(self) -> Dict[str, dict]:
        return {q.name: q.stats.snapshot() for q in self.queues}

    def __repr__(self) -> str:
        return (f"Fjord({self.name}, {len(self.modules)} modules, "
                f"{len(self.queues)} queues)")
