"""The Fjord: a dataflow graph of modules connected by queues, plus the
cooperative scheduler that drives it.

A Fjord owns the wiring (``connect``) and the run loop (``run`` /
``run_until_quiescent``).  Scheduling is round-robin with an idle
detector: a pass over every module in which nobody reports progress and
every source is exhausted means the dataflow is quiescent.

This is the single-plan analogue of the TelegraphCQ Execution Object; the
multi-query executor in :mod:`repro.core.executor` hosts many Fjords as
Dispatch Units inside scheduler-controlled EOs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.errors import PlanError
from repro.fjords.module import Module
from repro.fjords.queues import FjordQueue, PushQueue


class Fjord:
    """A runnable dataflow graph."""

    def __init__(self, name: str = "fjord", default_capacity: int = 0):
        self.name = name
        self.default_capacity = default_capacity
        self.modules: List[Module] = []
        self.queues: List[FjordQueue] = []
        self._names: Dict[str, Module] = {}

    # -- construction ------------------------------------------------------
    def add(self, module: Module) -> Module:
        """Register a module; names must be unique within the Fjord."""
        if module.name in self._names:
            raise PlanError(f"duplicate module name {module.name!r}")
        self.modules.append(module)
        self._names[module.name] = module
        return module

    def connect(self, producer: Module, consumer: Module,
                out_port: int = 0, in_port: int = 0,
                queue_cls: Type[FjordQueue] = PushQueue,
                capacity: Optional[int] = None,
                overflow: str = "refuse") -> FjordQueue:
        """Wire ``producer.out_port`` to ``consumer.in_port`` with a fresh
        queue of the requested flavour and return the queue."""
        for m in (producer, consumer):
            if m not in self.modules:
                self.add(m)
        cap = self.default_capacity if capacity is None else capacity
        queue = queue_cls(capacity=cap, overflow=overflow,
                          name=f"{producer.name}->{consumer.name}")
        producer.bind_output(out_port, queue)
        consumer.bind_input(in_port, queue)
        self.queues.append(queue)
        return queue

    def module(self, name: str) -> Module:
        try:
            return self._names[name]
        except KeyError:
            raise PlanError(f"no module named {name!r} in {self.name}") from None

    def validate(self) -> None:
        """Check every port is bound before running."""
        for m in self.modules:
            m._require_wired()

    # -- execution -----------------------------------------------------
    def step(self, batch: Optional[int] = None) -> bool:
        """One scheduling pass over every unfinished module.

        Returns True if any module made progress.
        """
        worked = False
        for m in self.modules:
            if m.finished:
                continue
            result = m.run_once(batch)
            worked = worked or result.worked
        return worked

    def run(self, max_steps: int = 1_000_000,
            batch: Optional[int] = None) -> int:
        """Run until quiescent (no module makes progress) or until
        ``max_steps`` scheduling passes have elapsed.

        Returns the number of passes taken.  A dataflow with live push
        sources never quiesces; cap it with ``max_steps`` or stop the
        sources first.
        """
        self.validate()
        steps = 0
        while steps < max_steps:
            steps += 1
            if not self.step(batch):
                break
        return steps

    def run_until_finished(self, max_steps: int = 1_000_000,
                           batch: Optional[int] = None) -> int:
        """Run until *every* module reports finished (EOS fully
        propagated), raising :class:`PlanError` on stall."""
        self.validate()
        steps = 0
        while steps < max_steps:
            steps += 1
            self.step(batch)
            if all(m.finished for m in self.modules):
                return steps
        stuck = [m.name for m in self.modules if not m.finished]
        raise PlanError(
            f"{self.name}: modules {stuck} did not finish within "
            f"{max_steps} passes")

    # -- introspection ---------------------------------------------------
    def queue_stats(self) -> Dict[str, dict]:
        return {q.name: q.stats.snapshot() for q in self.queues}

    def __repr__(self) -> str:
        return (f"Fjord({self.name}, {len(self.modules)} modules, "
                f"{len(self.queues)} queues)")
