"""The single monotonic clock source for all observability layers.

Telemetry trace spans (:mod:`repro.monitor.telemetry`) and end-to-end
tuple traces (:mod:`repro.monitor.tracing`) must be mutually comparable
— a span's window should bracket the hop timestamps of tuples processed
inside it.  That only holds if both read the *same* clock, so both
import :func:`now` from here instead of picking a ``time`` function
independently.

``perf_counter`` is monotonic and the highest-resolution clock the
stdlib offers; its epoch is arbitrary, so exporters that need wall time
anchor with :func:`wall_time` once and offset.
"""

from __future__ import annotations

import time

#: Monotonic, high-resolution timestamp in (fractional) seconds.
now = time.perf_counter


def wall_time() -> float:
    """Wall-clock seconds since the Unix epoch, for anchoring exports."""
    return time.time()
