"""Unified runtime telemetry: the process-wide metrics registry.

TelegraphCQ's premise is that adaptive policies act only on *observed
online* evidence (Section 1.1) — eddies, QoS shedding, and Flux
balancing all consume runtime statistics.  Historically each subsystem
here kept private counters with inconsistent names; this module is the
single substrate they all publish through, so one snapshot shows the
whole engine at once.

Three metric kinds, each a *family* of labeled series:

* :class:`Counter` — monotonically increasing totals
  (``tcq_eddy_tuples_routed_total``);
* :class:`Gauge` — point-in-time levels (``tcq_fjords_queue_depth``);
* :class:`Histogram` — bucketed distributions
  (``tcq_executor_du_busy_ratio``).

Two publication styles, chosen per call site by cost:

* **direct** — low-frequency events increment a series handle inline
  (QoS drops, Flux moves, spill writes);
* **collected** — hot paths keep their existing cheap integer counters,
  and register a *collector* callback (held by weak reference) that
  copies them into the registry only when a snapshot is taken.  The
  per-tuple path pays nothing; dead components silently disappear
  because collected families are rebuilt on every snapshot.

Naming convention: ``tcq_<subsystem>_<what>[_total]`` where subsystem is
one of ``eddy``, ``stem``, ``executor``, ``fjords``, ``qos``, ``flux``,
``storage``, ``ingress``, ``egress``, ``cacq``, ``server``,
``telemetry``.

A sampled per-tuple **trace span** facility rides along: call
:meth:`MetricRegistry.trace` around a unit of work; every Nth call
(``trace_sample_every``) records a timed span into a bounded ring
buffer readable via :meth:`MetricRegistry.recent_traces`.

Snapshots (:class:`TelemetrySnapshot`) are typed, order-stable, and
round-trip through both exporters: :meth:`TelemetrySnapshot.to_json` /
:meth:`TelemetrySnapshot.from_json` and
:meth:`TelemetrySnapshot.to_prometheus` /
:meth:`TelemetrySnapshot.from_prometheus`.
"""

from __future__ import annotations

import itertools
import json
import re
import threading
import weakref
from collections import deque
from typing import (Any, Callable, Deque, Dict, Iterable, List, Optional,
                    Sequence, Tuple as TypingTuple)

from repro.errors import TelemetryError
from repro.monitor.clock import now as _now


#: Default histogram bucket upper bounds (seconds-ish scale); +Inf is
#: implicit.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class _Series:
    """One labeled time series inside a family."""

    __slots__ = ("labels", "_reg")

    kind = "untyped"

    def __init__(self, labels: Dict[str, str], reg: "MetricRegistry"):
        self.labels = labels
        self._reg = reg


class Counter(_Series):
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, labels: Dict[str, str], reg: "MetricRegistry"):
        super().__init__(labels, reg)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._reg.enabled:
            return
        if amount < 0:
            raise TelemetryError("counters only go up; use a Gauge")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Collector entry point: publish an absolute running total."""
        if self._reg.enabled:
            self.value = float(value)


class Gauge(_Series):
    """A level that can go up and down."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, labels: Dict[str, str], reg: "MetricRegistry"):
        super().__init__(labels, reg)
        self.value = 0.0

    def set(self, value: float) -> None:
        if self._reg.enabled:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._reg.enabled:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self._reg.enabled:
            self.value -= amount


class Histogram(_Series):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")
    kind = "histogram"

    def __init__(self, labels: Dict[str, str], reg: "MetricRegistry",
                 bounds: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(labels, reg)
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._reg.enabled:
            return
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_buckets(self) -> List[TypingTuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``+Inf``."""
        out: List[TypingTuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out


class _NoopSeries:
    """Returned past the cardinality cap: absorbs writes silently."""

    kind = "noop"
    labels: Dict[str, str] = {}

    def inc(self, amount: float = 1.0) -> None: pass
    def dec(self, amount: float = 1.0) -> None: pass
    def set(self, value: float) -> None: pass
    def set_total(self, value: float) -> None: pass
    def observe(self, value: float) -> None: pass


_NOOP_SERIES = _NoopSeries()

_SERIES_CLASSES = {"counter": Counter, "gauge": Gauge,
                   "histogram": Histogram}


class MetricFamily:
    """All series sharing one name, kind, and label schema."""

    def __init__(self, name: str, kind: str, help: str,
                 labelnames: Sequence[str], reg: "MetricRegistry",
                 collected: bool = False,
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 max_series: int = 128):
        if kind not in _SERIES_CLASSES:
            raise TelemetryError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.collected = collected
        self.buckets = tuple(buckets)
        self.max_series = max_series
        self._reg = reg
        self._children: Dict[TypingTuple[str, ...], _Series] = {}

    def labels(self, *values: Any, **by_name: Any) -> _Series:
        """The child series for one label-value assignment.

        Accepts positional values in ``labelnames`` order or keywords;
        values are stringified.  Past ``max_series`` distinct children
        the family stops allocating and hands back a shared no-op series
        (the drop is counted in ``tcq_telemetry_dropped_series_total``).
        """
        if by_name:
            if values:
                raise TelemetryError(
                    "pass label values positionally or by name, not both")
            try:
                values = tuple(by_name[n] for n in self.labelnames)
            except KeyError as exc:
                raise TelemetryError(
                    f"{self.name}: missing label {exc.args[0]!r}") from None
        if len(values) != len(self.labelnames):
            raise TelemetryError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {len(values)} value(s)")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_series:
                self._reg._note_dropped_series(self.name)
                return _NOOP_SERIES
            label_map = dict(zip(self.labelnames, key))
            cls = _SERIES_CLASSES[self.kind]
            if cls is Histogram:
                child = Histogram(label_map, self._reg, self.buckets)
            else:
                child = cls(label_map, self._reg)
            self._children[key] = child
        return child

    def clear(self) -> None:
        """Drop every child (collected families rebuild per snapshot)."""
        self._children.clear()

    # -- unlabeled convenience: delegate to the () child -------------------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)            # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)            # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self.labels().set(value)             # type: ignore[union-attr]

    def set_total(self, value: float) -> None:
        self.labels().set_total(value)       # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        self.labels().observe(value)         # type: ignore[union-attr]

    def series(self) -> List[_Series]:
        return [self._children[k] for k in sorted(self._children)]

    def __repr__(self) -> str:
        return (f"MetricFamily({self.name}, {self.kind}, "
                f"{len(self._children)} series)")


class TraceSpan:
    """One sampled, timed unit of work."""

    __slots__ = ("name", "labels", "started_at", "duration", "_recorder")

    def __init__(self, name: str, labels: Dict[str, str],
                 recorder: Optional["MetricRegistry"]):
        self.name = name
        self.labels = labels
        # Shared clock (repro.monitor.clock) so span windows and tuple
        # trace hops are directly comparable.
        self.started_at = _now()
        self.duration: Optional[float] = None
        self._recorder = recorder

    def __enter__(self) -> "TraceSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.end()

    def end(self) -> None:
        if self.duration is None:
            self.duration = _now() - self.started_at
            if self._recorder is not None:
                self._recorder._record_span(self)


class _NoopSpan:
    """The unsampled case: zero bookkeeping."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass

    def end(self) -> None:
        pass


_NOOP_SPAN = _NoopSpan()

#: Collectors every registry runs at snapshot time, regardless of which
#: registry instance is current — used by module-scoped state (fjord
#: queue totals, spill I/O totals) that cannot bind a registry at
#: import time.
_GLOBAL_COLLECTORS: List[Callable[["MetricRegistry"], None]] = []


def register_global_collector(
        fn: Callable[["MetricRegistry"], None]) -> None:
    if fn not in _GLOBAL_COLLECTORS:
        _GLOBAL_COLLECTORS.append(fn)


class MetricRegistry:
    """The process-wide registry: declare families, take snapshots.

    ``trace_sample_every`` of 0 disables trace sampling entirely;
    ``N`` records every Nth :meth:`trace` call.
    """

    def __init__(self, trace_sample_every: int = 0,
                 trace_capacity: int = 256,
                 max_series_per_family: int = 128):
        self.enabled = True
        self.trace_sample_every = trace_sample_every
        self.trace_capacity = trace_capacity
        self.max_series_per_family = max_series_per_family
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[weakref.ReferenceType] = []
        # Span ring + sample counter are touched from Flux worker
        # threads: the deque bounds memory and appends atomically, the
        # itertools counter increments atomically under CPython, and the
        # recorded-spans total is guarded by a lock on the (rare)
        # sampled path only.
        self._spans: Deque[TraceSpan] = deque(maxlen=trace_capacity)
        self._trace_counter = itertools.count(1)
        self._spans_recorded = 0
        self._span_lock = threading.Lock()
        self.snapshots_taken = 0
        self.dropped_by_family: Dict[str, int] = {}

    @property
    def dropped_series(self) -> int:
        """Total series refused past the cap, across every family."""
        return sum(self.dropped_by_family.values())

    # -- declaration --------------------------------------------------------
    def _family(self, name: str, kind: str, help: str,
                labels: Sequence[str], collected: bool,
                buckets: Sequence[float]) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind:
                raise TelemetryError(
                    f"{name} already declared as a {fam.kind}")
            if fam.labelnames != tuple(labels):
                raise TelemetryError(
                    f"{name} already declared with labels {fam.labelnames}")
            return fam
        fam = MetricFamily(name, kind, help, labels, self,
                           collected=collected, buckets=buckets,
                           max_series=self.max_series_per_family)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = (),
                collected: bool = False) -> MetricFamily:
        return self._family(name, "counter", help, labels, collected, ())

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = (),
              collected: bool = False) -> MetricFamily:
        return self._family(name, "gauge", help, labels, collected, ())

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  collected: bool = False) -> MetricFamily:
        return self._family(name, "histogram", help, labels, collected,
                            buckets)

    # -- collectors ---------------------------------------------------------
    def register_collector(self, fn: Callable[[], None]) -> None:
        """Register a zero-argument callback run before every snapshot.

        Bound methods are held by :class:`weakref.WeakMethod`, so a
        component's collector dies with the component.
        """
        try:
            ref: weakref.ReferenceType = weakref.WeakMethod(fn)  # type: ignore[arg-type]
        except TypeError:
            ref = weakref.ref(fn)
        self._collectors.append(ref)

    def _note_dropped_series(self, family: str) -> None:
        self.dropped_by_family[family] = \
            self.dropped_by_family.get(family, 0) + 1

    # -- tracing ------------------------------------------------------------
    def trace(self, name: str, **labels: Any):
        """A context-managed span, sampled every Nth call.

        Thread-safe: the sample counter is an :func:`itertools.count`
        (atomic increment under CPython), so concurrent callers cannot
        lose or double-record a tick the way ``self._n += 1`` could.
        """
        if not self.enabled or not self.trace_sample_every:
            return _NOOP_SPAN
        if next(self._trace_counter) % self.trace_sample_every:
            return _NOOP_SPAN
        return TraceSpan(name, {k: str(v) for k, v in labels.items()}, self)

    def _record_span(self, span: TraceSpan) -> None:
        # deque(maxlen) bounds memory and appends atomically; only the
        # running total needs the lock, and only sampled spans get here.
        self._spans.append(span)
        with self._span_lock:
            self._spans_recorded += 1

    def recent_traces(self) -> List[TraceSpan]:
        return list(self._spans)

    # -- on/off -------------------------------------------------------------
    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    # -- snapshotting -------------------------------------------------------
    def collect(self) -> None:
        """Run every live collector into the registry."""
        for fam in self._families.values():
            if fam.collected:
                fam.clear()
        live: List[weakref.ReferenceType] = []
        for ref in self._collectors:
            fn = ref()
            if fn is None:
                continue
            live.append(ref)
            fn()
        self._collectors = live
        for gfn in _GLOBAL_COLLECTORS:
            gfn(self)

    def snapshot(self) -> "TelemetrySnapshot":
        if self.enabled:
            self.collect()
        self.snapshots_taken += 1
        self._self_report()
        samples: List[SeriesSample] = []
        for name in sorted(self._families):
            fam = self._families[name]
            for child in fam.series():
                samples.append(SeriesSample.from_series(fam, child))
        return TelemetrySnapshot(samples)

    def _self_report(self) -> None:
        self.gauge("tcq_telemetry_collectors",
                   "Live registered snapshot collectors").set(
            len(self._collectors))
        self.counter("tcq_telemetry_snapshots_total",
                     "Snapshots taken").set_total(self.snapshots_taken)
        dropped = self.counter(
            "tcq_telemetry_dropped_series_total",
            "Series refused past the per-family cardinality cap",
            ("family",), collected=True)
        # Publishing can itself hit the cap (and note a drop) — iterate
        # over a copy so the dict is free to grow underneath.
        for family, n in list(self.dropped_by_family.items()):
            dropped.labels(family).set_total(n)
        self.counter("tcq_telemetry_trace_spans_total",
                     "Trace spans recorded").set_total(
            self._spans_recorded)

    def reset(self) -> None:
        """Forget every family, collector, and span (tests)."""
        self._families.clear()
        self._collectors.clear()
        self._spans.clear()
        self._trace_counter = itertools.count(1)
        self._spans_recorded = 0
        self.snapshots_taken = 0
        self.dropped_by_family.clear()


class SeriesSample:
    """One series' state inside a snapshot — plain, comparable data."""

    __slots__ = ("name", "kind", "help", "labels", "value", "buckets",
                 "sum", "count")

    def __init__(self, name: str, kind: str, help: str,
                 labels: Dict[str, str],
                 value: Optional[float] = None,
                 buckets: Optional[List[TypingTuple[float, int]]] = None,
                 sum: Optional[float] = None,
                 count: Optional[int] = None):
        self.name = name
        self.kind = kind
        self.help = help
        self.labels = dict(labels)
        self.value = value
        self.buckets = buckets
        self.sum = sum
        self.count = count

    @classmethod
    def from_series(cls, fam: MetricFamily, s: _Series) -> "SeriesSample":
        if isinstance(s, Histogram):
            return cls(fam.name, fam.kind, fam.help, s.labels,
                       buckets=s.cumulative_buckets(), sum=s.sum,
                       count=s.count)
        return cls(fam.name, fam.kind, fam.help, s.labels,
                   value=s.value)          # type: ignore[union-attr]

    @property
    def subsystem(self) -> str:
        """``tcq_eddy_tuples_routed_total`` -> ``eddy``."""
        parts = self.name.split("_", 2)
        return parts[1] if len(parts) > 1 else self.name

    def key(self) -> TypingTuple[str, TypingTuple[TypingTuple[str, str], ...]]:
        return (self.name, tuple(sorted(self.labels.items())))

    def _as_tuple(self) -> tuple:
        return (self.name, self.kind, self.help,
                tuple(sorted(self.labels.items())), self.value,
                tuple(self.buckets) if self.buckets is not None else None,
                self.sum, self.count)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SeriesSample)
                and self._as_tuple() == other._as_tuple())

    def __hash__(self) -> int:
        return hash(self._as_tuple())

    def __repr__(self) -> str:
        if self.kind == "histogram":
            return (f"SeriesSample({self.name}{self.labels}, "
                    f"count={self.count}, sum={self.sum})")
        return f"SeriesSample({self.name}{self.labels} = {self.value})"


_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}
_HELP_ESCAPES = {"\\": "\\\\", "\n": "\\n"}


def _escape(text: str, table: Dict[str, str]) -> str:
    for raw, esc in table.items():
        text = text.replace(raw, esc)
    return text


def _unescape(text: str) -> str:
    return (text.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def _fmt_float(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    return repr(v)


def _parse_float(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


_SAMPLE_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$')
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class TelemetrySnapshot:
    """An immutable, typed view of the whole engine at one instant."""

    def __init__(self, samples: Sequence[SeriesSample]):
        self.samples = sorted(samples, key=SeriesSample.key)

    # -- queries ------------------------------------------------------------
    def get(self, name: str, **labels: Any) -> Optional[SeriesSample]:
        """The sample matching ``name`` whose labels include ``labels``."""
        want = {k: str(v) for k, v in labels.items()}
        for s in self.samples:
            if s.name == name and all(s.labels.get(k) == v
                                      for k, v in want.items()):
                return s
        return None

    def value(self, name: str, default: float = 0.0,
              **labels: Any) -> float:
        s = self.get(name, **labels)
        if s is None or s.value is None:
            return default
        return s.value

    def series_names(self) -> List[str]:
        return sorted({s.name for s in self.samples})

    def subsystems(self) -> List[str]:
        return sorted({s.subsystem for s in self.samples})

    def by_subsystem(self, subsystem: str) -> List[SeriesSample]:
        return [s for s in self.samples if s.subsystem == subsystem]

    def __len__(self) -> int:
        return len(self.samples)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TelemetrySnapshot)
                and self.samples == other.samples)

    def __repr__(self) -> str:
        return (f"TelemetrySnapshot({len(self.samples)} series over "
                f"{len(self.subsystems())} subsystems)")

    # -- JSON exporter ------------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        out = []
        for s in self.samples:
            entry: Dict[str, Any] = {"name": s.name, "kind": s.kind,
                                     "help": s.help, "labels": s.labels}
            if s.kind == "histogram":
                entry["buckets"] = [[_fmt_float(le), n]
                                    for le, n in (s.buckets or [])]
                entry["sum"] = s.sum
                entry["count"] = s.count
            else:
                entry["value"] = s.value
            out.append(entry)
        return json.dumps({"samples": out}, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TelemetrySnapshot":
        try:
            doc = json.loads(text)
            samples = []
            for entry in doc["samples"]:
                if entry["kind"] == "histogram":
                    samples.append(SeriesSample(
                        entry["name"], entry["kind"], entry.get("help", ""),
                        entry.get("labels", {}),
                        buckets=[(_parse_float(le), n)
                                 for le, n in entry["buckets"]],
                        sum=entry["sum"], count=entry["count"]))
                else:
                    samples.append(SeriesSample(
                        entry["name"], entry["kind"], entry.get("help", ""),
                        entry.get("labels", {}), value=entry["value"]))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"not a telemetry snapshot: {exc}") from exc
        return cls(samples)

    # -- Prometheus text exporter -------------------------------------------
    def to_prometheus(self) -> str:
        lines: List[str] = []
        seen_headers = set()
        for s in self.samples:
            if s.name not in seen_headers:
                seen_headers.add(s.name)
                if s.help:
                    lines.append(
                        f"# HELP {s.name} {_escape(s.help, _HELP_ESCAPES)}")
                lines.append(f"# TYPE {s.name} {s.kind}")
            if s.kind == "histogram":
                for le, n in s.buckets or []:
                    lines.append(self._sample_line(
                        s.name + "_bucket",
                        dict(s.labels, le=_fmt_float(le)), float(n)))
                lines.append(self._sample_line(s.name + "_sum", s.labels,
                                               s.sum or 0.0))
                lines.append(self._sample_line(s.name + "_count", s.labels,
                                               float(s.count or 0)))
            else:
                lines.append(self._sample_line(s.name, s.labels,
                                               s.value or 0.0))
        return "\n".join(lines) + "\n"

    @staticmethod
    def _sample_line(name: str, labels: Dict[str, str],
                     value: float) -> str:
        if labels:
            body = ",".join(
                f'{k}="{_escape(v, _LABEL_ESCAPES)}"'
                for k, v in sorted(labels.items()))
            return f"{name}{{{body}}} {_fmt_float(value)}"
        return f"{name} {_fmt_float(value)}"

    @classmethod
    def from_prometheus(cls, text: str) -> "TelemetrySnapshot":
        kinds: Dict[str, str] = {}
        helps: Dict[str, str] = {}
        # (name, labels-key) -> accumulating state
        plain: List[SeriesSample] = []
        hists: Dict[TypingTuple[str, TypingTuple[TypingTuple[str, str], ...]],
                    Dict[str, Any]] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("# HELP "):
                _, _, rest = line.partition("# HELP ")
                name, _, help_text = rest.partition(" ")
                helps[name] = _unescape(help_text)
                continue
            if line.startswith("# TYPE "):
                _, _, rest = line.partition("# TYPE ")
                name, _, kind = rest.partition(" ")
                kinds[name] = kind.strip()
                continue
            if line.startswith("#"):
                continue
            m = _SAMPLE_LINE.match(line)
            if not m:
                raise TelemetryError(f"unparseable exposition line: {line!r}")
            name = m.group("name")
            labels = {k: _unescape(v) for k, v in
                      _LABEL_PAIR.findall(m.group("labels") or "")}
            value = _parse_float(m.group("value"))
            base = None
            for suffix in ("_bucket", "_sum", "_count"):
                root = name[:-len(suffix)] if name.endswith(suffix) else None
                if root and kinds.get(root) == "histogram":
                    base = (root, suffix)
                    break
            if base is None:
                plain.append(SeriesSample(
                    name, kinds.get(name, "gauge"), helps.get(name, ""),
                    labels, value=value))
                continue
            root, suffix = base
            bare = {k: v for k, v in labels.items() if k != "le"}
            key = (root, tuple(sorted(bare.items())))
            st = hists.setdefault(key, {"labels": bare, "buckets": [],
                                        "sum": 0.0, "count": 0})
            if suffix == "_bucket":
                st["buckets"].append((_parse_float(labels["le"]),
                                      int(value)))
            elif suffix == "_sum":
                st["sum"] = value
            else:
                st["count"] = int(value)
        samples = list(plain)
        for (root, _lk), st in hists.items():
            samples.append(SeriesSample(
                root, "histogram", helps.get(root, ""), st["labels"],
                buckets=sorted(st["buckets"]), sum=st["sum"],
                count=st["count"]))
        return cls(samples)


#: The process-wide default registry every subsystem binds at
#: construction time.
_DEFAULT_REGISTRY = MetricRegistry()


def get_registry() -> MetricRegistry:
    """The current process-wide registry."""
    return _DEFAULT_REGISTRY


def set_registry(registry: MetricRegistry) -> MetricRegistry:
    """Swap the process-wide registry; returns the previous one.

    Components bind the registry current at *their* construction time,
    so swap before building the engine under observation.
    """
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous
