"""Runtime statistics: the evidence adaptive policies act on.

Streaming sources offer no reliable a-priori statistics (Section 1.1),
so everything the routing policies, the executor, and the QoS controller
know is *observed online*.  This module centralises the estimators:

* :class:`SelectivityTracker` — windowed pass-rate estimates per
  operator;
* :class:`RateEstimator` — arrival/service rates over a sliding window
  of ticks (drives overload detection);
* :class:`LatencyTracker` — per-tuple latency quantiles via a reservoir.
"""

from __future__ import annotations

import random
import warnings
from collections import deque
from typing import Deque, Dict, List, Optional


class SelectivityTracker:
    """Sliding-window selectivity estimate for one operator.

    Keeps the last ``window`` observations as a bit deque; the estimate
    is their mean.  A full-history counter is kept alongside so tests
    can compare "fresh" vs "stale" views (the drift experiments rely on
    the fresh one reacting).

    The blessed accessors are the :attr:`windowed_rate` and
    :attr:`lifetime_rate` properties — the vocabulary the telemetry
    snapshot uses.  The legacy ``windowed()`` / ``lifetime()`` callables
    remain as thin deprecated aliases.
    """

    def __init__(self, window: int = 256):
        self._window: Deque[int] = deque(maxlen=window)
        self.total_seen = 0
        self.total_passed = 0

    def observe(self, passed: bool) -> None:
        self._window.append(1 if passed else 0)
        self.total_seen += 1
        if passed:
            self.total_passed += 1

    @property
    def windowed_rate(self) -> float:
        """Pass rate over the sliding window (1.0 before evidence)."""
        if not self._window:
            return 1.0
        return sum(self._window) / len(self._window)

    @property
    def lifetime_rate(self) -> float:
        """Pass rate over the full history (1.0 before evidence)."""
        if not self.total_seen:
            return 1.0
        return self.total_passed / self.total_seen

    def windowed(self) -> float:
        """Deprecated alias for :attr:`windowed_rate`."""
        warnings.warn("SelectivityTracker.windowed() is deprecated; "
                      "use the windowed_rate property",
                      DeprecationWarning, stacklevel=2)
        return self.windowed_rate

    def lifetime(self) -> float:
        """Deprecated alias for :attr:`lifetime_rate`."""
        warnings.warn("SelectivityTracker.lifetime() is deprecated; "
                      "use the lifetime_rate property",
                      DeprecationWarning, stacklevel=2)
        return self.lifetime_rate


def sample_drift(old: Dict[str, float], new: Dict[str, float]) -> float:
    """Selectivity drift between two ``{operator: selectivity}``
    samples: the max absolute per-operator delta over the operators
    present in both.

    This is the §4.3 "rate of change" signal shared by the eddy-local
    :class:`~repro.core.adaptivity.AdaptivityController` and the
    scheduler-level
    :class:`~repro.sched.quantum.AdaptiveQuantumController`.
    """
    deltas = [abs(new[name] - value)
              for name, value in old.items() if name in new]
    return max(deltas, default=0.0)


class StabilityCounter:
    """Consecutive-identical-observation streak counter.

    The :class:`~repro.core.freeze.PlanFreezer` feeds it the operator
    route each batch of a footprint class actually took; the streak
    length is the "how settled is this plan?" evidence that gates
    freezing (the complement of :func:`sample_drift`, which gates
    thawing)."""

    __slots__ = ("last", "streak")

    def __init__(self) -> None:
        self.last: Optional[object] = None
        self.streak = 0

    def observe(self, value: object) -> int:
        """Record one observation; returns the current streak length."""
        if value == self.last:
            self.streak += 1
        else:
            self.last = value
            self.streak = 1
        return self.streak

    def reset(self) -> None:
        self.last = None
        self.streak = 0


class RateEstimator:
    """Events-per-tick over a sliding window of ticks."""

    def __init__(self, window_ticks: int = 32):
        self._events: Deque[int] = deque(maxlen=window_ticks)

    def tick(self, n_events: int) -> None:
        self._events.append(n_events)

    def rate(self) -> float:
        if not self._events:
            return 0.0
        return sum(self._events) / len(self._events)

    def peak(self) -> int:
        return max(self._events, default=0)


class LatencyTracker:
    """Reservoir-sampled latency distribution."""

    def __init__(self, reservoir: int = 1024, seed: int = 0):
        self.reservoir_size = reservoir
        self._samples: List[float] = []
        self._seen = 0
        self._rng = random.Random(seed)

    def observe(self, latency: float) -> None:
        self._seen += 1
        if len(self._samples) < self.reservoir_size:
            self._samples.append(latency)
            return
        j = self._rng.randrange(self._seen)
        if j < self.reservoir_size:
            self._samples[j] = latency

    def quantile(self, q: float) -> Optional[float]:
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def mean(self) -> Optional[float]:
        if not self._samples:
            return None
        return sum(self._samples) / len(self._samples)

    @property
    def count(self) -> int:
        return self._seen


class EngineMonitor:
    """Aggregates the per-component estimators for one engine instance,
    and renders a flat snapshot for logging and the QoS controller."""

    def __init__(self) -> None:
        self.selectivities: Dict[str, SelectivityTracker] = {}
        self.arrival = RateEstimator()
        self.service = RateEstimator()
        self.latency = LatencyTracker()
        self.dropped = 0

    def selectivity(self, operator: str) -> SelectivityTracker:
        tracker = self.selectivities.get(operator)
        if tracker is None:
            tracker = SelectivityTracker()
            self.selectivities[operator] = tracker
        return tracker

    def overload_factor(self) -> float:
        """arrival rate / service rate; > 1 means falling behind."""
        service = self.service.rate()
        if service <= 0:
            return 0.0 if self.arrival.rate() <= 0 else float("inf")
        return self.arrival.rate() / service

    def snapshot(self) -> Dict[str, object]:
        return {
            "arrival_rate": self.arrival.rate(),
            "service_rate": self.service.rate(),
            "overload": self.overload_factor(),
            "latency_p50": self.latency.quantile(0.5),
            "latency_p95": self.latency.quantile(0.95),
            "dropped": self.dropped,
            "selectivities": {
                name: tracker.windowed_rate
                for name, tracker in self.selectivities.items()
            },
        }
