"""monitor subpackage of the TelegraphCQ reproduction."""
