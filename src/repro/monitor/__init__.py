"""monitor subpackage of the TelegraphCQ reproduction.

Three layers:

* :mod:`repro.monitor.stats` — per-component online estimators
  (selectivity, rate, latency);
* :mod:`repro.monitor.qos` — the load-shedding QoS controller;
* :mod:`repro.monitor.telemetry` — the process-wide metrics registry
  and trace-span facility every subsystem publishes through, with JSON
  and Prometheus exporters.
"""

from repro.monitor.qos import LoadShedder
from repro.monitor.stats import (EngineMonitor, LatencyTracker,
                                 RateEstimator, SelectivityTracker)
from repro.monitor.telemetry import (Counter, Gauge, Histogram,
                                     MetricFamily, MetricRegistry,
                                     SeriesSample, TelemetrySnapshot,
                                     TraceSpan, get_registry,
                                     register_global_collector,
                                     set_registry)

__all__ = [
    "Counter", "EngineMonitor", "Gauge", "Histogram", "LatencyTracker",
    "LoadShedder", "MetricFamily", "MetricRegistry", "RateEstimator",
    "SelectivityTracker", "SeriesSample", "TelemetrySnapshot",
    "TraceSpan", "get_registry", "register_global_collector",
    "set_registry",
]
