"""monitor subpackage of the TelegraphCQ reproduction.

Five layers:

* :mod:`repro.monitor.stats` — per-component online estimators
  (selectivity, rate, latency);
* :mod:`repro.monitor.qos` — the load-shedding QoS controller;
* :mod:`repro.monitor.telemetry` — the process-wide metrics registry
  and trace-span facility every subsystem publishes through, with JSON
  and Prometheus exporters;
* :mod:`repro.monitor.tracing` — sampled end-to-end tuple traces
  (ingress→egress hop records, latency watermarks, JSONL/Chrome
  exporters);
* :mod:`repro.monitor.introspect` — the eddy routing flight recorder
  and live EXPLAIN [ANALYZE] reconstruction.
"""

from repro.monitor.qos import LoadShedder
from repro.monitor.stats import (EngineMonitor, LatencyTracker,
                                 RateEstimator, SelectivityTracker)
from repro.monitor.telemetry import (Counter, Gauge, Histogram,
                                     MetricFamily, MetricRegistry,
                                     SeriesSample, TelemetrySnapshot,
                                     TraceSpan, get_registry,
                                     register_global_collector,
                                     set_registry)
from repro.monitor.tracing import (Hop, TraceContext, Tracer,
                                   configure_tracing, get_tracer,
                                   latency_by_query)
from repro.monitor.introspect import (FlightRecorder, RoutingDecision,
                                      explain_eddy, get_flight_recorder,
                                      render_explain)

__all__ = [
    "Counter", "EngineMonitor", "FlightRecorder", "Gauge", "Histogram",
    "Hop", "LatencyTracker", "LoadShedder", "MetricFamily",
    "MetricRegistry", "RateEstimator", "RoutingDecision",
    "SelectivityTracker", "SeriesSample", "TelemetrySnapshot",
    "TraceContext", "TraceSpan", "Tracer", "configure_tracing",
    "explain_eddy", "get_flight_recorder", "get_registry", "get_tracer",
    "latency_by_query", "register_global_collector", "render_explain",
    "set_registry",
]
