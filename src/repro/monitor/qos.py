"""Quality of Service: load shedding under overload (Section 4.3).

When arrival rate exceeds service rate, a stream engine must decide
"what work to drop when the system is in danger of falling behind the
incoming data stream".  TelegraphCQ's position (via Juggle/[UF02]) is to
push *user preferences* into that decision rather than dropping blindly.

:class:`LoadShedder` implements three policies the E12 benchmark
compares:

* ``none``      — never drop; queues (and latency) grow without bound;
* ``random``    — drop a uniform fraction sized to the overload factor;
* ``preferred`` — drop from the least-preferred classes first, spending
  the drop budget where the user cares least.

The controller recomputes the drop rate every epoch from observed
arrival/service rates, so bursts raise shedding and lulls lower it —
graceful degradation instead of collapse.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.tuples import Tuple
from repro.errors import QosError
from repro.monitor.stats import RateEstimator
from repro.monitor.telemetry import get_registry


class LoadShedder:
    """Admission control in front of an engine."""

    POLICIES = ("none", "random", "preferred")

    def __init__(self, policy: str = "random",
                 target_utilisation: float = 0.9,
                 classify: Optional[Callable[[Tuple], Any]] = None,
                 preferences: Optional[Dict[Any, float]] = None,
                 seed: int = 0):
        if policy not in self.POLICIES:
            raise QosError(f"unknown shedding policy {policy!r}")
        if policy == "preferred" and classify is None:
            raise QosError("preferred shedding needs a classify function")
        self.policy = policy
        self.target_utilisation = target_utilisation
        self.classify = classify
        self.preferences = dict(preferences or {})
        self._rng = random.Random(seed)
        self.arrival = RateEstimator()
        self.service = RateEstimator()
        self.drop_rate = 0.0
        self.admitted = 0
        self.dropped = 0
        self.dropped_by_class: Dict[Any, int] = {}
        self._telemetry = get_registry()
        self._telemetry.register_collector(self._publish_telemetry)

    # -- control loop ---------------------------------------------------------
    def update(self, arrived: int, serviced: int) -> float:
        """Feed one epoch's counts; returns the new drop rate.

        The drop rate aims service capacity at ``target_utilisation``:
        admitting more than the engine retires per epoch only grows the
        queue, so the surplus fraction is shed.
        """
        self.arrival.tick(arrived)
        self.service.tick(serviced)
        if self.policy == "none":
            self.drop_rate = 0.0
            return 0.0
        arrival_rate = self.arrival.rate()
        capacity = self.service.rate() * self.target_utilisation
        if arrival_rate <= 0 or arrival_rate <= capacity:
            self.drop_rate = 0.0
        else:
            self.drop_rate = 1.0 - (capacity / arrival_rate)
        return self.drop_rate

    # -- admission ---------------------------------------------------------------
    def admit(self, batch: Sequence[Tuple]) -> List[Tuple]:
        """Filter a batch according to the current drop rate."""
        if self.drop_rate <= 0.0 or self.policy == "none":
            self.admitted += len(batch)
            return list(batch)
        if self.policy == "random":
            kept = [t for t in batch if self._rng.random() >= self.drop_rate]
        else:
            kept = self._admit_preferred(batch)
        n_dropped = len(batch) - len(kept)
        self.dropped += n_dropped
        self.admitted += len(kept)
        return kept

    def _admit_preferred(self, batch: Sequence[Tuple]) -> List[Tuple]:
        """Drop the batch's least-preferred tuples first."""
        budget = int(round(len(batch) * self.drop_rate))
        if budget <= 0:
            return list(batch)
        ranked = sorted(
            batch, key=lambda t: self.preferences.get(self.classify(t), 0.0))
        victims = ranked[:budget]
        victim_ids = {id(t) for t in victims}
        for t in victims:
            key = self.classify(t)
            self.dropped_by_class[key] = self.dropped_by_class.get(key, 0) + 1
        return [t for t in batch if id(t) not in victim_ids]

    # -- telemetry ---------------------------------------------------------------
    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        reg.counter("tcq_qos_admitted_total",
                    "Tuples admitted past the load shedder", ("policy",),
                    collected=True).labels(self.policy).set_total(
            self.admitted)
        reg.counter("tcq_qos_dropped_total",
                    "Tuples shed by the load shedder", ("policy",),
                    collected=True).labels(self.policy).set_total(
            self.dropped)
        reg.gauge("tcq_qos_drop_rate", "Current controller drop rate",
                  ("policy",), collected=True).labels(self.policy).set(
            self.drop_rate)
        reg.gauge("tcq_qos_completeness",
                  "Fraction of arrivals admitted so far", ("policy",),
                  collected=True).labels(self.policy).set(
            self.completeness())
        by_class = reg.counter("tcq_qos_dropped_by_class_total",
                               "Preferred-policy drops per tuple class",
                               ("policy", "klass"), collected=True)
        for key, count in self.dropped_by_class.items():
            by_class.labels(self.policy, str(key)).set_total(count)

    # -- reporting ---------------------------------------------------------------
    def completeness(self) -> float:
        total = self.admitted + self.dropped
        return self.admitted / total if total else 1.0

    def stats(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "drop_rate": self.drop_rate,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "completeness": self.completeness(),
            "dropped_by_class": dict(self.dropped_by_class),
        }
