"""Routing flight recorder and live EXPLAIN [ANALYZE] reconstruction.

In TelegraphCQ the plan is an emergent property: the eddy re-decides the
operator order per tuple (or per batch), so "what plan is this query
running?" has no static answer.  This module makes the de-facto plan
observable after the fact:

* :class:`FlightRecorder` — a bounded ring of recent
  :class:`RoutingDecision` records captured at every
  ``RoutingPolicy.choose`` call site inside the eddy: the tuple's ready
  set, the policy consulted, the operator chosen, and a
  tickets/selectivity/cost snapshot *at decision time*, so a surprising
  route can be explained by the evidence the policy actually saw.

* :func:`explain_eddy` — reconstructs an EXPLAIN report for one eddy:
  the dominant operator orderings with observed frequencies (from the
  sampled tuple traces when available, else from the flight recorder,
  else estimated from selectivities), per-operator visit/selectivity/
  cost, the batching/vectorize directive and effective quantum, and —
  under ANALYZE — ingress→egress latency percentiles from the traces.

``TelegraphCQServer.explain`` builds the equivalent report for server
cursors (the CACQ shared route is hardwired, so its ordering carries
frequency by ingress share); both render through
:func:`render_explain`, which is what the CLI ``EXPLAIN`` statement
prints.
"""

from __future__ import annotations

from collections import Counter as TallyCounter, deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple as TypingTuple

import repro.monitor.tracing as tracing
from repro.monitor.clock import now

__all__ = ["RoutingDecision", "FlightRecorder", "RECORDER",
           "get_flight_recorder", "explain_eddy", "render_explain",
           "format_seconds"]


class RoutingDecision:
    """One recorded ``policy.choose`` outcome with its evidence."""

    __slots__ = ("eddy", "policy", "chosen", "ready", "selectivity",
                 "cost", "tickets", "rows", "at", "sched_pass")

    def __init__(self, eddy: str, policy: str, chosen: str,
                 ready: TypingTuple[str, ...],
                 selectivity: TypingTuple[float, ...],
                 cost: TypingTuple[float, ...],
                 tickets: TypingTuple[float, ...],
                 rows: int, at: float, sched_pass: str):
        self.eddy = eddy
        self.policy = policy
        self.chosen = chosen
        self.ready = ready            # eligible operator names, in order
        self.selectivity = selectivity  # aligned with ready
        self.cost = cost                # aligned with ready
        self.tickets = tickets          # aligned with ready ((), if n/a)
        self.rows = rows                # 1, or the batch width
        self.at = at
        self.sched_pass = sched_pass

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "eddy": self.eddy, "policy": self.policy,
            "chosen": self.chosen, "ready": list(self.ready),
            "selectivity": [round(s, 6) for s in self.selectivity],
            "cost": list(self.cost), "rows": self.rows, "at": self.at,
        }
        if self.tickets:
            d["tickets"] = list(self.tickets)
        if self.sched_pass:
            d["sched_pass"] = self.sched_pass
        return d

    def __repr__(self) -> str:
        return (f"RoutingDecision({self.eddy}: {self.policy} chose "
                f"{self.chosen} from {list(self.ready)})")


class FlightRecorder:
    """Bounded ring of recent routing decisions.

    Disabled by default: snapshotting selectivities/tickets per decision
    is cheap but not free, and the untraced hot path must stay at a
    single ``if rec.enabled`` test.  ``TRACE ON`` in the CLI (or
    :meth:`enable` programmatically) switches it on; the ring bounds
    memory regardless of uptime.
    """

    def __init__(self, capacity: int = 512, enabled: bool = False):
        self.capacity = int(capacity)
        self.enabled = enabled
        self._ring: Deque[RoutingDecision] = deque(maxlen=self.capacity)
        self.recorded = 0

    def configure(self, capacity: Optional[int] = None,
                  enabled: Optional[bool] = None) -> "FlightRecorder":
        if capacity is not None:
            self.capacity = int(capacity)
            self._ring = deque(self._ring, maxlen=self.capacity)
        if enabled is not None:
            self.enabled = bool(enabled)
        return self

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def record(self, eddy: str, policy: Any, chosen: Any,
               eligible: Sequence[Any], rows: int = 1) -> None:
        """Capture one decision (callers guard on :attr:`enabled`)."""
        self._ring.append(RoutingDecision(
            eddy=eddy,
            policy=policy.describe(),
            chosen=chosen.name,
            ready=tuple(op.name for op in eligible),
            selectivity=tuple(op.observed_selectivity()
                              for op in eligible),
            cost=tuple(float(op.cost_estimate()) for op in eligible),
            tickets=policy.tickets_snapshot(eligible),
            rows=rows,
            at=now(),
            sched_pass=tracing.TRACER.current_pass,
        ))
        self.recorded += 1

    def recent(self, n: int = 0) -> List[RoutingDecision]:
        decisions = list(self._ring)
        return decisions[-n:] if n > 0 else decisions

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._ring)


#: The process-wide recorder; eddies bind it at construction.
RECORDER = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    return RECORDER


# -- EXPLAIN reconstruction ------------------------------------------------
def explain_eddy(eddy: Any, analyze: bool = False,
                 tracer: Optional[tracing.Tracer] = None,
                 recorder: Optional[FlightRecorder] = None
                 ) -> Dict[str, Any]:
    """Reconstruct the de-facto plan of one eddy from observability
    state.  Returns a plain dict (render with :func:`render_explain`)."""
    tracer = tracer if tracer is not None else tracing.TRACER
    recorder = recorder if recorder is not None else RECORDER
    site = getattr(eddy, "_telemetry_id", eddy.name)

    operators = [{
        "name": op.name,
        "kind": type(op).__name__,
        "visits": op.seen,
        "passed": op.passed_count,
        "selectivity": op.observed_selectivity(),
        "cost": float(op.cost_estimate()),
    } for op in eddy.operators]

    freezer = getattr(eddy, "freezer", None)
    if freezer is not None and freezer.frozen:
        # A frozen class IS the plan: the pinned order beats any
        # statistical reconstruction.  Reverts automatically on thaw
        # (frozen empties and the tiers below take over again).
        orderings = [{"order": list(p.order), "frequency": 1.0,
                      "count": freezer.frozen_batches}
                     for p in freezer.frozen.values()]
        source = "frozen"
    else:
        orderings, source = _orderings_from_traces(site, tracer)
        if not orderings:
            orderings, source = _orderings_from_recorder(
                eddy, site, recorder)
        if not orderings:
            orderings, source = _estimated_ordering(eddy)

    directive = eddy.batching
    report: Dict[str, Any] = {
        "kind": "eddy",
        "target": eddy.name,
        "telemetry_id": site,
        "policy": eddy.policy.describe(),
        "batching": {"batch_size": directive.batch_size,
                     "fix_sequence": directive.fix_sequence,
                     "vectorize": directive.vectorize},
        "quantum": directive.batch_size,
        "output_sources": sorted(eddy.output_sources),
        "operators": operators,
        "orderings": orderings,
        "ordering_source": source,
        "decisions_recorded": sum(1 for d in recorder.recent()
                                  if d.eddy == site),
    }
    if freezer is not None:
        report["freeze"] = freezer.describe()
    if analyze:
        lats = [tr.latency() for tr in tracer.recent()
                if any(h.site == site for h in tr.hops)]
        pct = tracing.exact_percentiles(lats)
        report["latency"] = {"p50": pct[0.5], "p95": pct[0.95],
                             "p99": pct[0.99], "count": len(lats)}
    return report


def _orderings_from_traces(site: str, tracer: tracing.Tracer
                           ) -> TypingTuple[List[Dict[str, Any]], str]:
    tally: TallyCounter = TallyCounter()
    for tr in tracer.recent():
        seq = tr.operator_sequence(site)
        if seq:
            tally[seq] += 1
    total = sum(tally.values())
    if not total:
        return [], ""
    return [{"order": list(seq), "frequency": count / total,
             "count": count}
            for seq, count in tally.most_common()], "traces"


def _orderings_from_recorder(eddy: Any, site: str,
                             recorder: FlightRecorder
                             ) -> TypingTuple[List[Dict[str, Any]], str]:
    """With no traces in hand, chain the dominant choice per ready-set:
    start from the largest ready set seen and follow most-common picks
    until the chain leaves recorded territory."""
    decisions = [d for d in recorder.recent() if d.eddy == site]
    if not decisions:
        return [], ""
    by_ready: Dict[TypingTuple[str, ...], TallyCounter] = {}
    seen_ops: Dict[str, bool] = {}
    for d in decisions:
        by_ready.setdefault(d.ready, TallyCounter())[d.chosen] += 1
        for name in d.ready:
            seen_ops[name] = True
    ready = max(by_ready,
                key=lambda r: (len(r), sum(by_ready[r].values())))
    order: List[str] = []
    while ready in by_ready:
        chosen = by_ready[ready].most_common(1)[0][0]
        order.append(chosen)
        nxt = tuple(n for n in ready if n != chosen)
        if not nxt or nxt == ready:
            break
        ready = nxt
    by_sel = {op.name: op.observed_selectivity()
              for op in eddy.operators}
    for name in sorted(seen_ops, key=lambda n: by_sel.get(n, 1.0)):
        if name not in order:
            order.append(name)
    return ([{"order": order, "frequency": 1.0,
              "count": len(decisions)}], "flight-recorder")


def _estimated_ordering(eddy: Any
                        ) -> TypingTuple[List[Dict[str, Any]], str]:
    """No runtime evidence at all: rank by observed (or prior)
    selectivity, the order a greedy policy would converge to."""
    order = [op.name for op in
             sorted(eddy.operators,
                    key=lambda op: (op.observed_selectivity(),
                                    op.cost_estimate(), op.name))]
    return [{"order": order, "frequency": 1.0, "count": 0}], "estimated"


# -- rendering -------------------------------------------------------------
def format_seconds(seconds: float) -> str:
    if seconds <= 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def render_explain(report: Dict[str, Any]) -> str:
    """Human-readable EXPLAIN text from a report dict produced by
    :func:`explain_eddy` or ``TelegraphCQServer.explain``."""
    lines: List[str] = []
    kind = report.get("kind", "plan")
    lines.append(f"EXPLAIN {report.get('target', '?')} (kind={kind})")
    if report.get("policy"):
        lines.append(f"  policy:   {report['policy']}")
    batching = report.get("batching")
    if batching:
        lines.append("  batching: " + " ".join(
            f"{k}={v}" for k, v in batching.items()))
    if report.get("quantum") is not None:
        lines.append(f"  quantum:  {report['quantum']}")
    if report.get("output_sources"):
        lines.append("  output:   {" + ", ".join(
            report["output_sources"]) + "}")
    for extra in ("streams", "queries_sharing"):
        if report.get(extra) is not None:
            lines.append(f"  {extra}: {report[extra]}")
    orderings = report.get("orderings") or []
    if orderings:
        source = report.get("ordering_source", "")
        suffix = f" (source={source})" if source else ""
        lines.append(f"  dominant orderings{suffix}:")
        for o in orderings:
            route = " -> ".join(o["order"]) if o["order"] else "(none)"
            lines.append(f"    {o['frequency'] * 100:5.1f}%  {route}"
                         f"  (n={o['count']})")
    operators = report.get("operators") or []
    if operators:
        lines.append("  operators:")
        name_w = max(len("name"), max(len(o["name"]) for o in operators))
        kind_w = max(len("kind"), max(len(o.get("kind", ""))
                                      for o in operators))
        lines.append(f"    {'name'.ljust(name_w)}  {'kind'.ljust(kind_w)}"
                     f"  {'visits':>8}  {'passed':>8}  selectivity  cost")
        for o in operators:
            sel = o.get("selectivity")
            sel_text = f"{sel:11.4f}" if sel is not None else " " * 11
            lines.append(
                f"    {o['name'].ljust(name_w)}"
                f"  {o.get('kind', '').ljust(kind_w)}"
                f"  {o.get('visits', 0):>8}  {o.get('passed', 0):>8}"
                f"  {sel_text}  {o.get('cost', 0):.1f}")
    latency = report.get("latency")
    if latency:
        lines.append(
            "  latency (ingress->egress, sampled): "
            f"p50={format_seconds(latency['p50'])} "
            f"p95={format_seconds(latency['p95'])} "
            f"p99={format_seconds(latency['p99'])} "
            f"n={int(latency['count'])}")
    if report.get("decisions_recorded"):
        lines.append(f"  flight recorder: "
                     f"{report['decisions_recorded']} decisions captured")
    freeze = report.get("freeze")
    if freeze:
        lines.append(
            f"  plan freezer: {freeze['active']} class(es) frozen, "
            f"{freeze['freezes']} freezes / {freeze['thaws']} thaws, "
            f"{freeze['frozen_rows']} rows on frozen pipelines")
        for p in freeze.get("pipelines", []):
            route = " -> ".join(p["order"])
            fused = p.get("fused_segments") or []
            fused_text = ("; fused: " + ", ".join(
                "+".join(seg) for seg in fused)) if fused else ""
            lines.append(f"    frozen {{{', '.join(p['class']['sources'])}}}"
                         f": {route}{fused_text}")
        for t in freeze.get("recent_thaws", [])[-3:]:
            lines.append(f"    thawed {' -> '.join(t['order'])}"
                         f"  ({t['reason']})")
    if report.get("notes"):
        for note in report["notes"]:
            lines.append(f"  note: {note}")
    return "\n".join(lines)
