"""Sampled end-to-end tuple tracing: follow one tuple hop by hop.

The aggregate counters in :mod:`repro.monitor.telemetry` answer "how
much"; they cannot answer "*where did this tuple's latency go*" or
"which operator order did it actually take" — and in an eddy-based
engine the order is decided per tuple, so no static plan can answer
either.  This module attaches a :class:`TraceContext` to every Nth
ingress tuple; instrumented sites along the dataflow (fjord queue
push/pop, each eddy visit with the operator chosen, SteM build/probe,
egress delivery) append timestamped :class:`Hop` records, and the trace
is closed at delivery.  Finished traces land in a bounded ring and are
exportable as JSON-lines or Chrome ``trace_event`` JSON
(``chrome://tracing`` / Perfetto).

Cost discipline — the reason this can stay compiled into the hot path:

* ingress sampling is one counter increment plus one modulo compare
  (``sample_every == 0`` keeps :attr:`Tracer.active` False and skips
  even that);
* every per-tuple site guards on ``t.trace is not None`` — a single
  slot load for the (vast) untraced majority;
* queue/egress sites guard on ``TRACER.active`` before touching the
  item at all.

On finish, each trace feeds the **latency watermarks**: per-query
ingress→egress histograms plus per-hop-kind time attribution, published
through the current :class:`~repro.monitor.telemetry.MetricRegistry` as
the ``tcq_trace_*`` family.  Timestamps come from
:mod:`repro.monitor.clock`, the same clock telemetry spans use, so spans
and hops are directly comparable.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence

import repro.monitor.telemetry as telemetry
from repro.monitor.clock import now

__all__ = ["Hop", "TraceContext", "Tracer", "TRACER", "get_tracer",
           "configure_tracing", "note_hop", "finish_item",
           "histogram_percentiles", "exact_percentiles",
           "latency_by_query", "LATENCY_BUCKETS"]

#: Bucket bounds for in-process latencies (microseconds to seconds);
#: the telemetry defaults start at 1ms, far too coarse for a hop.
LATENCY_BUCKETS = (1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
                   1e-2, 5e-2, 0.1, 0.5, 1.0)


class Hop:
    """One timestamped waypoint in a tuple's journey."""

    __slots__ = ("at", "kind", "site", "detail", "sched_pass")

    def __init__(self, at: float, kind: str, site: str, detail: str,
                 sched_pass: str):
        self.at = at
        self.kind = kind          # ingress|queue|eddy|stem|emit|egress
        self.site = site          # queue / eddy / stem / module name
        self.detail = detail      # operator chosen, direction, ...
        self.sched_pass = sched_pass

    def to_dict(self, base: float = 0.0) -> Dict[str, Any]:
        d: Dict[str, Any] = {"t": round(self.at - base, 9),
                             "kind": self.kind, "site": self.site}
        if self.detail:
            d["detail"] = self.detail
        if self.sched_pass:
            d["sched_pass"] = self.sched_pass
        return d


class TraceContext:
    """The per-tuple trace: carried in the tuple's ``trace`` slot and
    propagated through joins (composites inherit a parent's context) and
    batches (a :class:`~repro.core.tuples.TupleBatch` carries the traces
    of its sampled rows)."""

    __slots__ = ("trace_id", "source", "query", "started_at",
                 "finished_at", "hops")

    def __init__(self, trace_id: int, source: str = ""):
        self.trace_id = trace_id
        self.source = source
        self.query = ""
        self.started_at = now()
        self.finished_at: Optional[float] = None
        self.hops: List[Hop] = []

    def hop(self, kind: str, site: str, detail: str = "") -> None:
        """Append one waypoint (annotated with the scheduler pass the
        engine is currently inside, if any)."""
        self.hops.append(Hop(now(), kind, site, detail,
                             TRACER.current_pass))

    def latency(self) -> float:
        """Ingress→egress seconds (up to "now" while still open)."""
        return (self.finished_at if self.finished_at is not None
                else now()) - self.started_at

    def operator_sequence(self, site: str) -> "tuple":
        """The operators this tuple visited at eddy ``site``, in order —
        the trace-level ground truth EXPLAIN aggregates into dominant
        orderings."""
        return tuple(h.detail for h in self.hops
                     if h.kind == "eddy" and h.site == site and h.detail)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "source": self.source,
            "query": self.query,
            "latency_s": round(self.latency(), 9),
            "finished": self.finished_at is not None,
            "hops": [h.to_dict(self.started_at) for h in self.hops],
        }


class Tracer:
    """Samples, carries, closes, and stores tuple traces.

    ``sample_every=N`` traces every Nth ingress tuple; 0 disables
    tracing entirely (:attr:`active` False — the production default).
    Finished traces live in a ``deque(maxlen=capacity)`` ring, so memory
    stays bounded no matter how long the engine runs.  Sampling uses
    :func:`itertools.count`, which is atomic under CPython, so
    concurrent ingress threads (Flux paths) cannot corrupt the counter —
    they merely interleave which tuples get picked.
    """

    def __init__(self, sample_every: int = 0, capacity: int = 256):
        self.sample_every = int(sample_every)
        self.capacity = int(capacity)
        self.active = self.sample_every > 0
        self._arrivals = itertools.count(1)
        self._ids = itertools.count(1)
        self._ring: Deque[TraceContext] = deque(maxlen=self.capacity)
        self.started = 0
        self.completed = 0
        #: "sched:pass" annotation stamped onto hops; maintained by
        #: Scheduler.pass_once so traces show which pass drove each hop.
        self.current_pass = ""

    # -- configuration ----------------------------------------------------
    def configure(self, sample_every: Optional[int] = None,
                  capacity: Optional[int] = None) -> "Tracer":
        if sample_every is not None:
            self.sample_every = int(sample_every)
            self.active = self.sample_every > 0
        if capacity is not None:
            self.capacity = int(capacity)
            self._ring = deque(self._ring, maxlen=self.capacity)
        return self

    # -- lifecycle --------------------------------------------------------
    def maybe_start(self, t: Any, source: str = "") -> Optional[TraceContext]:
        """Attach a trace to ``t`` if it is the Nth arrival.

        Callers on the hot path guard with ``if TRACER.active`` first, so
        the disabled cost is one attribute test; the enabled-but-unsampled
        cost is one counter bump plus one modulo compare.
        """
        if not self.active:
            return None
        if next(self._arrivals) % self.sample_every:
            return None
        tr = TraceContext(next(self._ids), source)
        tr.hop("ingress", source or "ingress")
        t.trace = tr
        self.started += 1
        return tr

    def start(self, source: str = "") -> TraceContext:
        """Unconditionally start a trace (tests, ad-hoc probes)."""
        tr = TraceContext(next(self._ids), source)
        tr.hop("ingress", source or "ingress")
        self.started += 1
        return tr

    def finish(self, tr: Optional[TraceContext], query: str = "") -> None:
        """Close a trace at delivery; idempotent (a stored tuple can be
        delivered into several windows — the first delivery wins)."""
        if tr is None or tr.finished_at is not None:
            return
        tr.finished_at = now()
        if query:
            tr.query = query
        self._ring.append(tr)
        self.completed += 1
        self._publish(tr)

    def _publish(self, tr: TraceContext) -> None:
        """Feed the latency watermarks from one finished trace."""
        reg = telemetry.get_registry()
        if not reg.enabled:
            return
        query = tr.query or tr.source or "?"
        reg.histogram(
            "tcq_trace_e2e_latency_seconds",
            "Ingress-to-egress latency of sampled tuples",
            ("query",), buckets=LATENCY_BUCKETS).labels(query).observe(
            tr.latency())
        reg.counter("tcq_trace_traces_total",
                    "Sampled tuple traces completed",
                    ("query",)).labels(query).inc()
        hop_hist = reg.histogram(
            "tcq_trace_hop_seconds",
            "Per-hop time attribution of sampled tuples",
            ("kind",), buckets=LATENCY_BUCKETS)
        hops = tr.hops
        prev = tr.started_at
        for h in hops:
            hop_hist.labels(h.kind).observe(max(0.0, h.at - prev))
            prev = h.at
        reg.counter("tcq_trace_hops_total",
                    "Hops recorded across sampled traces").inc(len(hops))

    # -- ring access ------------------------------------------------------
    def recent(self, n: int = 0) -> List[TraceContext]:
        """The most recent finished traces (all of the ring when n<=0)."""
        traces = list(self._ring)
        return traces[-n:] if n > 0 else traces

    def clear(self) -> None:
        self._ring.clear()

    def reset(self) -> None:
        """Forget everything, keep configuration (tests)."""
        self._ring.clear()
        self._arrivals = itertools.count(1)
        self._ids = itertools.count(1)
        self.started = 0
        self.completed = 0
        self.current_pass = ""

    def summary(self) -> Dict[str, Any]:
        return {"sample_every": self.sample_every,
                "capacity": self.capacity, "active": self.active,
                "started": self.started, "completed": self.completed,
                "ring": len(self._ring)}

    # -- exporters --------------------------------------------------------
    def export_jsonl(self,
                     traces: Optional[Iterable[TraceContext]] = None) -> str:
        """One JSON object per line per trace (the ``TRACE DUMP``
        format)."""
        traces = self.recent() if traces is None else list(traces)
        return "\n".join(json.dumps(tr.to_dict(), sort_keys=True)
                         for tr in traces)

    def export_chrome(self,
                      traces: Optional[Iterable[TraceContext]] = None) -> str:
        """Chrome ``trace_event`` JSON: each hop becomes a complete
        ("X") event whose duration is the time since the previous hop,
        one virtual thread per trace.  Load in chrome://tracing or
        Perfetto."""
        traces = self.recent() if traces is None else list(traces)
        events: List[Dict[str, Any]] = []
        if traces:
            base = min(tr.started_at for tr in traces)
            for tr in traces:
                prev = tr.started_at
                for h in tr.hops:
                    name = f"{h.kind}:{h.site}"
                    if h.detail:
                        name += f":{h.detail}"
                    args: Dict[str, Any] = {}
                    if h.sched_pass:
                        args["sched_pass"] = h.sched_pass
                    events.append({
                        "name": name, "cat": h.kind, "ph": "X",
                        "pid": 1, "tid": tr.trace_id,
                        "ts": (prev - base) * 1e6,
                        "dur": max(0.0, h.at - prev) * 1e6,
                        "args": args,
                    })
                    prev = h.at
                if tr.finished_at is not None:
                    events.append({
                        "name": f"trace:{tr.query or tr.source or '?'}",
                        "cat": "trace", "ph": "X", "pid": 1,
                        "tid": tr.trace_id,
                        "ts": (tr.started_at - base) * 1e6,
                        "dur": (tr.finished_at - tr.started_at) * 1e6,
                        "args": {"trace_id": tr.trace_id},
                    })
        return json.dumps({"traceEvents": events,
                           "displayTimeUnit": "ms"})


#: The process-wide tracer every instrumented site reads.  Hot paths
#: access it as ``tracing.TRACER`` (module attribute) so reconfiguration
#: is visible everywhere immediately.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


def configure_tracing(sample_every: int,
                      capacity: Optional[int] = None) -> Tracer:
    """Convenience knob: ``configure_tracing(64)`` traces every 64th
    ingress tuple; ``configure_tracing(0)`` switches tracing off."""
    return TRACER.configure(sample_every=sample_every, capacity=capacity)


def note_hop(item: Any, kind: str, site: str, detail: str = "") -> None:
    """Record a hop on a queue item that may be a Tuple (``trace``
    slot), a TupleBatch (``traces`` tuple), or control punctuation
    (neither).  Call sites guard on ``TRACER.active`` first."""
    tr = getattr(item, "trace", None)
    if tr is not None:
        tr.hop(kind, site, detail)
        return
    for tr in getattr(item, "traces", ()) or ():
        tr.hop(kind, site, detail)


def finish_item(item: Any, query: str = "") -> None:
    """Close the trace(s) riding on a delivered item, if any."""
    tr = getattr(item, "trace", None)
    if tr is not None:
        TRACER.finish(tr, query)
        return
    for tr in getattr(item, "traces", ()) or ():
        TRACER.finish(tr, query)


# -- percentile helpers ----------------------------------------------------
def histogram_percentiles(sample: Any,
                          qs: Sequence[float] = (0.5, 0.95, 0.99)
                          ) -> Dict[float, float]:
    """Estimate quantiles from a histogram ``SeriesSample`` (cumulative
    ``(le, count)`` buckets) by linear interpolation inside the bucket
    containing each rank; the +Inf bucket reports its lower edge."""
    total = sample.count or 0
    buckets = sample.buckets or []
    if not total or not buckets:
        return {q: 0.0 for q in qs}
    out: Dict[float, float] = {}
    for q in qs:
        rank = q * total
        lo, prev_cum = 0.0, 0
        value = 0.0
        for le, cum in buckets:
            if cum >= rank:
                if le == float("inf"):
                    value = lo
                else:
                    span = cum - prev_cum
                    frac = (rank - prev_cum) / span if span else 1.0
                    value = lo + (le - lo) * frac
                break
            prev_cum = cum
            if le != float("inf"):
                lo = le
            value = lo
        out[q] = value
    return out


def exact_percentiles(values: Sequence[float],
                      qs: Sequence[float] = (0.5, 0.95, 0.99)
                      ) -> Dict[float, float]:
    """Nearest-rank quantiles over raw samples (used by EXPLAIN ANALYZE,
    which has the actual trace latencies in hand)."""
    if not values:
        return {q: 0.0 for q in qs}
    ordered = sorted(values)
    n = len(ordered)
    return {q: ordered[min(n - 1, max(0, int(q * n + 0.5) - 1))]
            for q in qs}


def latency_by_query(snapshot: Any = None) -> Dict[str, Dict[str, float]]:
    """p50/p95/p99 ingress→egress per query from the published
    ``tcq_trace_e2e_latency_seconds`` watermarks (the STATS LATENCY
    section)."""
    if snapshot is None:
        snapshot = telemetry.get_registry().snapshot()
    out: Dict[str, Dict[str, float]] = {}
    for s in snapshot.samples:
        if s.name != "tcq_trace_e2e_latency_seconds":
            continue
        pct = histogram_percentiles(s)
        out[s.labels.get("query", "?")] = {
            "p50": pct[0.5], "p95": pct[0.95], "p99": pct[0.99],
            "count": float(s.count or 0),
        }
    return out
