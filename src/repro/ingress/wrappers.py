"""The Wrapper host and streamers (Section 4.2.3, Figure 5).

In TelegraphCQ proper, wrappers live in their own OS process "where they
can be accessed in a non-blocking manner (a la Fjords)", fetching from
the network with a thread pool and handing tuples to the Executor
through shared memory.  Here the process boundary becomes an object
boundary with the same contract:

* :class:`WrapperHost` owns a set of :class:`~repro.ingress.sources.
  DataSource` objects and polls them round-robin, never blocking on a
  quiet one;
* :class:`Streamer` prepares the polled tuples for consumption —
  assigning ingestion timestamps when the source has none, appending to
  the stream's :class:`~repro.core.windows.HistoricalStore` (the
  "materialization in the buffer pool") and pushing to a Fjord queue for
  direct delivery to the Executor;
* :class:`StreamScanner` is the "scanner operator ... driven by window
  descriptors": a Fjord source module that replays a window's worth of
  historical tuples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.tuples import Punctuation, Tuple
from repro.core.windows import ForLoopSpec, HistoricalStore
from repro.errors import ExecutionError
from repro.fjords.module import SourceModule
from repro.fjords.queues import FjordQueue
from repro.ingress.ingress import IngressPoint
from repro.ingress.sources import DataSource


class Streamer:
    """Produces tuples for one stream: timestamping + fan-out.

    A streamer can deliver to any number of Fjord queues (direct
    delivery to executors) and optionally materialise into a
    HistoricalStore so later queries can read the past.  The four
    ingress obligations (timestamping, trace attachment, admission,
    store + delivery) live in the configured
    :class:`~repro.ingress.ingress.IngressPoint`, not here.
    """

    def __init__(self, stream: str,
                 store: Optional[HistoricalStore] = None):
        self.stream = stream
        self.store = store
        self._queues: List[FjordQueue] = []
        self.point = IngressPoint(
            stream, deliver=self._push_all, store=store,
            assign_timestamps=True)

    def _push_all(self, t: Tuple) -> None:
        for q in self._queues:
            q.push(t)

    @property
    def delivered(self) -> int:
        return self.point.accepted

    def attach_queue(self, queue: FjordQueue) -> None:
        self._queues.append(queue)

    def deliver(self, tuples: Iterable[Tuple]) -> int:
        return self.point.admit(tuples)

    def close(self) -> None:
        for q in self._queues:
            q.push(Punctuation.eos(self.stream))


class WrapperHost:
    """Hosts ingress sources and pumps them without blocking.

    ``step(now)`` gives every registered source one bounded poll — the
    cooperative analogue of the wrapper process's non-blocking I/O
    thread pool.  A source that yields nothing simply contributes
    nothing this tick.
    """

    def __init__(self, poll_budget: int = 64):
        self.poll_budget = poll_budget
        self._sources: Dict[str, DataSource] = {}
        self._streamers: Dict[str, Streamer] = {}
        self.clock = 0

    def register(self, source: DataSource, streamer: Streamer) -> None:
        if source.name in self._sources:
            raise ExecutionError(f"duplicate source {source.name!r}")
        self._sources[source.name] = source
        self._streamers[source.name] = streamer

    def step(self, now: Optional[int] = None) -> int:
        """Poll every live source once; returns tuples moved."""
        self.clock = self.clock + 1 if now is None else now
        moved = 0
        for name, source in list(self._sources.items()):
            if source.exhausted:
                continue
            batch = source.poll(self.clock, self.poll_budget)
            if batch:
                moved += self._streamers[name].deliver(batch)
            if source.exhausted:
                self._streamers[name].close()
        return moved

    def run_until_exhausted(self, max_ticks: int = 1_000_000) -> int:
        """Drive all sources to completion; returns total tuples."""
        total = 0
        for _ in range(max_ticks):
            total += self.step()
            if all(s.exhausted for s in self._sources.values()):
                return total
        raise ExecutionError("wrapper sources did not exhaust in time")

    @property
    def all_exhausted(self) -> bool:
        return all(s.exhausted for s in self._sources.values())


class WrapperSourceModule(SourceModule):
    """Adapts a :class:`DataSource` directly into a Fjord source module,
    for plans that bypass the WrapperHost (single-dataflow tests)."""

    def __init__(self, source: DataSource, name: str = ""):
        super().__init__(name=name or f"wrap[{source.name}]")
        self.source = source
        self._clock = 0

    def generate(self, batch: int) -> Iterable[Tuple]:
        self._clock += 1
        out = self.source.poll(self._clock, batch)
        if self.source.exhausted:
            self.exhausted = True
        return out


class StreamScanner(SourceModule):
    """Replays one stream window-by-window from a HistoricalStore.

    For each iteration of the for-loop spec it emits the window's tuples
    followed by a WINDOW_BOUNDARY punctuation, so downstream operators
    (aggregates, sort, dup-elim) produce the paper's sequence of sets.
    """

    def __init__(self, store: HistoricalStore, spec: ForLoopSpec,
                 name: str = ""):
        super().__init__(name=name or f"scan[{store.stream}]")
        self.store = store
        self.spec = spec
        self._iterator = iter(spec)

    def generate(self, batch: int) -> Iterable[Tuple]:
        try:
            instance = next(self._iterator)
        except StopIteration:
            self.exhausted = True
            return ()
        lo, hi = instance.bounds_for(self.store.stream)
        out: List = list(self.store.scan(lo, hi))
        out.append(Punctuation.window_boundary(payload=instance.t))
        return out
