"""TAG-style in-network aggregation (Section 4.3, [MFHH02]).

The paper's roadmap: "One form of distribution is the integration of
TelegraphCQ with the TAG system for aggregation over ad hoc sensor
networks."  TAG (Tiny AGgregation) computes aggregates *inside* the
network: motes form a routing tree; each epoch, partial state records
flow one tree level up per sub-interval, so the root receives one
aggregate instead of one message per mote.

This module simulates that integration:

* :class:`RoutingTree` — an ad hoc tree built from a random connectivity
  graph (deterministic under seed), with per-node levels;
* :class:`TagAggregator` — epoch-based in-network evaluation of the
  decomposable aggregates (COUNT/SUM/AVG/MIN/MAX), counting radio
  messages, with optional per-message loss;
* :class:`CentralizedAggregator` — the baseline: every reading travels
  hop-by-hop to the root, where the engine aggregates.

TAG's headline claim is the message-count saving (its Figure 5 shows
roughly an order of magnitude); the EXPERIMENTS index reproduces it as
the TAG ablation inside the sensor benchmarks.  The root's output is a
per-epoch tuple stream a TelegraphCQ query can consume like any other
ingress.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Tuple as TypingTuple

from repro.core.tuples import Schema, Tuple
from repro.errors import ExecutionError

#: Result schema produced at the root, one row per epoch.
TAG_RESULT = Schema.of("TagResults", "epoch", "value", "messages")


class RoutingTree:
    """An ad hoc routing tree over ``n`` motes.

    Built the TAG way: the root broadcasts; each mote picks as parent
    the first neighbour it hears at a lower level.  Connectivity is a
    random geometric-ish graph: mote i can hear motes within ``radio``
    index distance (a 1-d stand-in for radio range), deterministic under
    ``seed``.
    """

    def __init__(self, n: int, radio: int = 4, seed: int = 0):
        if n < 1:
            raise ExecutionError("need at least one mote")
        self.n = n
        rng = random.Random(seed)
        self.parent: Dict[int, Optional[int]] = {0: None}
        self.level: Dict[int, int] = {0: 0}
        frontier = [0]
        unattached = set(range(1, n))
        while frontier and unattached:
            next_frontier: List[int] = []
            for node in frontier:
                hearers = [m for m in list(unattached)
                           if abs(m - node) <= radio
                           and rng.random() > 0.1]      # 10% deaf links
                for m in hearers:
                    if m in unattached:
                        unattached.discard(m)
                        self.parent[m] = node
                        self.level[m] = self.level[node] + 1
                        next_frontier.append(m)
            frontier = next_frontier
        # Anything unreachable attaches straight to the root (a long
        # multi-hop path in reality; we charge it its index distance).
        for m in unattached:
            self.parent[m] = 0
            self.level[m] = max(1, m // max(1, radio))

    @property
    def depth(self) -> int:
        return max(self.level.values())

    def children(self, node: int) -> List[int]:
        return [m for m, p in self.parent.items() if p == node]

    def hops_to_root(self, node: int) -> int:
        return self.level[node]


class _PartialState:
    """TAG partial state records for the decomposable aggregates."""

    @staticmethod
    def init(fn: str, value: float) -> TypingTuple:
        if fn in ("COUNT",):
            return (1,)
        if fn in ("SUM", "MIN", "MAX"):
            return (value,)
        if fn == "AVG":
            return (value, 1)
        raise ExecutionError(f"TAG does not support aggregate {fn!r}")

    @staticmethod
    def merge(fn: str, a: TypingTuple, b: TypingTuple) -> TypingTuple:
        if fn == "COUNT":
            return (a[0] + b[0],)
        if fn == "SUM":
            return (a[0] + b[0],)
        if fn == "MIN":
            return (min(a[0], b[0]),)
        if fn == "MAX":
            return (max(a[0], b[0]),)
        if fn == "AVG":
            return (a[0] + b[0], a[1] + b[1])
        raise ExecutionError(f"TAG does not support aggregate {fn!r}")

    @staticmethod
    def evaluate(fn: str, state: TypingTuple) -> float:
        if fn == "AVG":
            return state[0] / state[1] if state[1] else float("nan")
        return state[0]


class TagAggregator:
    """Epoch-based in-network aggregation over a routing tree."""

    def __init__(self, tree: RoutingTree, fn: str = "AVG",
                 read: Optional[Callable[[int, int], float]] = None,
                 loss_rate: float = 0.0, seed: int = 1):
        self.tree = tree
        self.fn = fn.upper()
        _PartialState.init(self.fn, 0.0)      # validate fn eagerly
        self.read = read or self._default_read
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)
        self.epoch = 0
        self.messages_sent = 0
        self.messages_lost = 0

    @staticmethod
    def _default_read(mote: int, epoch: int) -> float:
        return 20.0 + 5.0 * math.sin((epoch + mote) / 10.0)

    def run_epoch(self) -> Tuple:
        """One TAG epoch: readings combine up the tree, level by level.

        Returns the root's result tuple for this epoch.
        """
        self.epoch += 1
        epoch_messages = 0
        # partial state arriving at each node from its subtree
        incoming: Dict[int, List[TypingTuple]] = {
            node: [] for node in range(self.tree.n)}
        # deepest levels transmit first
        for level in range(self.tree.depth, 0, -1):
            for node in range(self.tree.n):
                if self.tree.level.get(node) != level:
                    continue
                state = _PartialState.init(self.fn,
                                           self.read(node, self.epoch))
                for child_state in incoming[node]:
                    state = _PartialState.merge(self.fn, state, child_state)
                parent = self.tree.parent[node]
                self.messages_sent += 1
                epoch_messages += 1
                if self.loss_rate and self._rng.random() < self.loss_rate:
                    self.messages_lost += 1
                    continue          # subtree's contribution lost
                incoming[parent].append(state)
        # the root contributes its own reading and evaluates
        state = _PartialState.init(self.fn, self.read(0, self.epoch))
        for child_state in incoming[0]:
            state = _PartialState.merge(self.fn, state, child_state)
        value = _PartialState.evaluate(self.fn, state)
        return TAG_RESULT.make(self.epoch, value, epoch_messages,
                               timestamp=self.epoch)

    def run(self, epochs: int) -> List[Tuple]:
        return [self.run_epoch() for _ in range(epochs)]


class CentralizedAggregator:
    """The no-TAG baseline: every reading is forwarded hop-by-hop to the
    root, which aggregates there.  Message cost per epoch is the sum of
    every mote's hop count — what TAG avoids."""

    def __init__(self, tree: RoutingTree, fn: str = "AVG",
                 read: Optional[Callable[[int, int], float]] = None):
        self.tree = tree
        self.fn = fn.upper()
        self.read = read or TagAggregator._default_read
        self.epoch = 0
        self.messages_sent = 0

    def run_epoch(self) -> Tuple:
        self.epoch += 1
        epoch_messages = 0
        state: Optional[TypingTuple] = None
        for node in range(self.tree.n):
            reading = _PartialState.init(self.fn,
                                         self.read(node, self.epoch))
            epoch_messages += self.tree.hops_to_root(node)
            state = reading if state is None else \
                _PartialState.merge(self.fn, state, reading)
        self.messages_sent += epoch_messages
        value = _PartialState.evaluate(self.fn, state)
        return TAG_RESULT.make(self.epoch, value, epoch_messages,
                               timestamp=self.epoch)

    def run(self, epochs: int) -> List[Tuple]:
        return [self.run_epoch() for _ in range(epochs)]
