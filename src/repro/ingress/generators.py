"""Synthetic workload generators.

The paper's target data sources — sensor networks, network monitors,
stock feeds, web sources — are not available offline, so every benchmark
runs against synthetic streams whose *statistical knobs* (arrival rate,
burstiness, value drift, skew, selectivity) are controlled explicitly.
This preserves the behaviour the evaluation claims depend on: what
matters to an adaptive engine is the shape of the data, not its
provenance (see DESIGN.md, substitution table).

All generators are deterministic under a seed.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.core import columnar
from repro.core.tuples import Schema, Tuple, TupleBatch

#: Schema used by the paper's running example (Section 4.1): one row per
#: stock per trading day.
CLOSING_STOCK_PRICES = Schema.of(
    "ClosingStockPrices", "timestamp", "stockSymbol", "closingPrice")

#: Sensor readings in the spirit of the Fjords/TinyDB motivating apps.
SENSOR_READINGS = Schema.of(
    "SensorReadings", "ts", "sensor_id", "temperature", "voltage")

#: A network-monitor stream (Tribeca-style packet summaries).
PACKET_SUMMARIES = Schema.of(
    "PacketSummaries", "ts", "src", "dst", "port", "bytes")


class StockStreamGenerator:
    """Daily closing prices: a random walk per symbol.

    Produces one tuple per (day, symbol); timestamps are trading-day
    numbers starting at 1, matching the paper's examples.  ``drift_at``
    optionally makes every symbol's price jump at a given day, which the
    eddy-adaptivity experiments use to move predicate selectivities
    mid-stream.
    """

    def __init__(self, symbols: Sequence[str] = ("MSFT", "IBM", "ORCL",
                                                 "INTC", "AAPL"),
                 seed: int = 0, start_price: float = 50.0,
                 volatility: float = 1.0,
                 drift_at: Optional[int] = None, drift_by: float = 0.0):
        self.symbols = list(symbols)
        self.seed = seed
        self.start_price = start_price
        self.volatility = volatility
        self.drift_at = drift_at
        self.drift_by = drift_by
        self.schema = CLOSING_STOCK_PRICES

    def days(self, n_days: int) -> Iterator[Tuple]:
        rng = random.Random(self.seed)
        prices = {s: self.start_price for s in self.symbols}
        for day in range(1, n_days + 1):
            if self.drift_at is not None and day == self.drift_at:
                for s in prices:
                    prices[s] += self.drift_by
            for sym in self.symbols:
                prices[sym] = max(
                    0.01, prices[sym] + rng.gauss(0.0, self.volatility))
                yield self.schema.make(day, sym, round(prices[sym], 2),
                                       timestamp=day)

    def take(self, n_days: int) -> List[Tuple]:
        return list(self.days(n_days))


class SensorStreamGenerator:
    """Temperature/voltage readings from ``n_sensors`` simulated motes.

    ``failure_rate`` drops readings (sensors "may have run out of power
    or temporarily disconnected"); ``anomaly_rate`` injects hot readings
    the monitoring examples alert on.
    """

    def __init__(self, n_sensors: int = 8, seed: int = 0,
                 base_temp: float = 20.0, failure_rate: float = 0.0,
                 anomaly_rate: float = 0.0, anomaly_delta: float = 25.0):
        self.n_sensors = n_sensors
        self.seed = seed
        self.base_temp = base_temp
        self.failure_rate = failure_rate
        self.anomaly_rate = anomaly_rate
        self.anomaly_delta = anomaly_delta
        self.schema = SENSOR_READINGS

    def ticks(self, n_ticks: int) -> Iterator[Tuple]:
        rng = random.Random(self.seed)
        for ts in range(1, n_ticks + 1):
            for sensor in range(self.n_sensors):
                if self.failure_rate and rng.random() < self.failure_rate:
                    continue
                temp = self.base_temp + 3.0 * math.sin(
                    (ts + sensor) / 10.0) + rng.gauss(0.0, 0.5)
                if self.anomaly_rate and rng.random() < self.anomaly_rate:
                    temp += self.anomaly_delta
                voltage = max(0.0, 3.0 - ts * 1e-4 + rng.gauss(0.0, 0.01))
                yield self.schema.make(ts, sensor, round(temp, 3),
                                       round(voltage, 4), timestamp=ts)

    def take(self, n_ticks: int) -> List[Tuple]:
        return list(self.ticks(n_ticks))


class PacketStreamGenerator:
    """Network-monitor records with Zipf-skewed sources.

    The skew parameter drives the Flux load-balancing experiments: a
    hash partitioning over a Zipf key distribution is exactly the
    workload where static Exchange falls over.
    """

    def __init__(self, n_hosts: int = 100, n_ports: int = 16,
                 zipf_s: float = 0.0, seed: int = 0,
                 burst_every: int = 0, burst_factor: int = 5):
        self.n_hosts = n_hosts
        self.n_ports = n_ports
        self.zipf_s = zipf_s
        self.seed = seed
        self.burst_every = burst_every
        self.burst_factor = burst_factor
        self.schema = PACKET_SUMMARIES
        self._weights = self._zipf_weights()

    def _zipf_weights(self) -> List[float]:
        if self.zipf_s <= 0.0:
            return [1.0] * self.n_hosts
        return [1.0 / (rank ** self.zipf_s)
                for rank in range(1, self.n_hosts + 1)]

    def packets(self, n_packets: int) -> Iterator[Tuple]:
        rng = random.Random(self.seed)
        ts = 0
        emitted = 0
        while emitted < n_packets:
            ts += 1
            burst = 1
            if self.burst_every and ts % self.burst_every == 0:
                burst = self.burst_factor
            for _ in range(burst):
                if emitted >= n_packets:
                    break
                src = rng.choices(range(self.n_hosts),
                                  weights=self._weights)[0]
                dst = rng.randrange(self.n_hosts)
                port = rng.randrange(self.n_ports)
                size = rng.randint(40, 1500)
                yield self.schema.make(ts, f"h{src}", f"h{dst}", port, size,
                                       timestamp=ts)
                emitted += 1

    def take(self, n_packets: int) -> List[Tuple]:
        return list(self.packets(n_packets))


class DriftingSelectivityGenerator:
    """A single-column stream whose value distribution flips mid-stream.

    Built for the E1/E8 adaptivity experiments: before ``flip_at`` the
    column ``a`` is mostly small and ``b`` mostly large; afterwards they
    swap, so any plan frozen against the initial selectivities orders
    its filters wrong for the remainder.
    """

    def __init__(self, seed: int = 0, flip_at: int = 0,
                 low_pass: float = 0.1, high_pass: float = 0.9):
        self.schema = Schema.of("drift", "a", "b")
        self.seed = seed
        self.flip_at = flip_at
        self.low_pass = low_pass
        self.high_pass = high_pass

    def take(self, n: int) -> List[Tuple]:
        rng = random.Random(self.seed)
        out: List[Tuple] = []
        for i in range(n):
            flipped = self.flip_at and i >= self.flip_at
            a_pass = self.high_pass if flipped else self.low_pass
            b_pass = self.low_pass if flipped else self.high_pass
            a = 1 if rng.random() < a_pass else 0
            b = 1 if rng.random() < b_pass else 0
            out.append(self.schema.make(a, b, timestamp=i))
        return out

    def take_batches(self, n: int, batch_size: int) -> List[TupleBatch]:
        """Columnar ingress: the same stream as :meth:`take` (identical
        value sequence under the same seed) packed straight into
        column-backed batches — no per-row Tuple objects are minted.

        Whole columns are promoted to arrays once and each batch holds
        zero-copy slices of them, so downstream ufunc kernels never pay
        a list-to-array conversion.  Without numpy the batches carry
        plain list slices and the engine's per-element fallback runs.
        """
        rng = random.Random(self.seed)
        a_col: List[int] = []
        b_col: List[int] = []
        for i in range(n):
            flipped = self.flip_at and i >= self.flip_at
            a_pass = self.high_pass if flipped else self.low_pass
            b_pass = self.low_pass if flipped else self.high_pass
            a_col.append(1 if rng.random() < a_pass else 0)
            b_col.append(1 if rng.random() < b_pass else 0)
        cols = []
        for c in (a_col, b_col):
            arr = columnar.as_array(c)
            cols.append(arr if arr is not None else c)
        return [TupleBatch(self.schema,
                           [c[s:min(s + batch_size, n)] for c in cols],
                           list(range(s, min(s + batch_size, n))))
                for s in range(0, n, batch_size)]


def replicate_for_alias(tuples: Iterable[Tuple], alias: str) -> List[Tuple]:
    """Re-schema tuples under an alias, for self-joins (the paper's
    temporal band-join declares ClosingStockPrices as c1 and c2)."""
    out: List[Tuple] = []
    alias_schema: Optional[Schema] = None
    for t in tuples:
        if alias_schema is None:
            alias_schema = Schema(t.schema.columns, name=alias)
        clone = Tuple(alias_schema, t.values, timestamp=t.timestamp)
        out.append(clone)
    return out
