"""The sensor proxy: an ingress module that talks *back* to its network
(Section 2.1 / [MF02], "Fjording the Stream").

"More sophisticated Ingress modules can be built that can also send
messages back to the network.  For example a sensor proxy may send
control messages to adjust the sample rate of a sensor network based on
the queries that are currently being processed."

The proxy sits between a simulated mote field and the engine:

* queries *register interest* in attributes with a desired period;
* the proxy computes, per mote, the slowest sample period that still
  satisfies every interested query, and sends a (simulated) control
  message whenever that changes;
* with no interested queries, motes idle at a heartbeat rate — which is
  exactly the power saving the Fjords paper measured.

The mote field is simulated: each mote produces one reading per elapsed
period, and counts samples taken (the proxy's success metric is samples
*not* taken).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Optional, Set, Tuple as TypingTuple

from repro.core.tuples import Schema, Tuple
from repro.errors import ExecutionError

#: A mote that never needs to sample still reports at this period so
#: liveness is observable.
HEARTBEAT_PERIOD = 256


class SimulatedMote:
    """One sensor node: samples on command, at its current period."""

    def __init__(self, mote_id: int, seed: int = 0):
        self.mote_id = mote_id
        self.period = HEARTBEAT_PERIOD
        self._next_sample_at = 1
        self.samples_taken = 0
        self.control_messages = 0
        self._state = (mote_id * 2654435761 + seed) & 0xFFFFFFFF

    def set_period(self, period: int) -> None:
        if period != self.period:
            self.period = period
            self.control_messages += 1

    def _rand(self) -> float:
        # xorshift: deterministic, no global random state
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return x / 0xFFFFFFFF

    def tick(self, now: int) -> Optional[TypingTuple[float, float]]:
        """Returns (temperature, voltage) if the mote samples now."""
        if now < self._next_sample_at:
            return None
        self._next_sample_at = now + self.period
        self.samples_taken += 1
        temp = 20.0 + 5.0 * math.sin(now / 50.0) + (self._rand() - 0.5)
        volt = 3.0 - now * 1e-5
        return round(temp, 3), round(volt, 4)


class Interest:
    """One query's sampling requirement."""

    __slots__ = ("interest_id", "motes", "period")

    def __init__(self, interest_id: int, motes: Optional[Set[int]],
                 period: int):
        self.interest_id = interest_id
        self.motes = motes          # None == all motes
        self.period = period


class SensorProxy:
    """Query-aware ingress for a mote field.

    ``register_interest(motes, period)`` is called when a query over the
    sensor stream starts (motes=None means every mote);
    ``withdraw(interest)`` when it is cancelled.  ``step()`` advances
    the simulated field one time unit and returns any new readings.
    """

    def __init__(self, n_motes: int, schema: Optional[Schema] = None,
                 seed: int = 0):
        if n_motes < 1:
            raise ExecutionError("a sensor field needs at least one mote")
        self.motes = [SimulatedMote(i, seed=seed) for i in range(n_motes)]
        self.schema = schema or Schema.of(
            "SensorReadings", "ts", "sensor_id", "temperature", "voltage")
        self._interests: Dict[int, Interest] = {}
        self._ids = itertools.count()
        self.clock = 0
        self.readings_produced = 0

    # -- the control plane -------------------------------------------------
    def register_interest(self, motes: Optional[Iterable[int]],
                          period: int) -> Interest:
        if period < 1:
            raise ExecutionError("sample period must be >= 1")
        mote_set = None if motes is None else set(motes)
        if mote_set is not None:
            unknown = mote_set - {m.mote_id for m in self.motes}
            if unknown:
                raise ExecutionError(f"unknown motes {sorted(unknown)}")
        interest = Interest(next(self._ids), mote_set, period)
        self._interests[interest.interest_id] = interest
        self._retune()
        return interest

    def withdraw(self, interest: Interest) -> None:
        if interest.interest_id not in self._interests:
            raise ExecutionError("interest is not registered")
        del self._interests[interest.interest_id]
        self._retune()

    def _retune(self) -> None:
        """Push the loosest satisfying period to every mote."""
        for mote in self.motes:
            periods = [i.period for i in self._interests.values()
                       if i.motes is None or mote.mote_id in i.motes]
            mote.set_period(min(periods) if periods else HEARTBEAT_PERIOD)

    def required_period(self, mote_id: int) -> int:
        return self.motes[mote_id].period

    # -- the data plane --------------------------------------------------------
    def step(self) -> List[Tuple]:
        """Advance time one unit; returns the readings sampled now."""
        self.clock += 1
        out: List[Tuple] = []
        for mote in self.motes:
            sample = mote.tick(self.clock)
            if sample is not None:
                temp, volt = sample
                out.append(self.schema.make(self.clock, mote.mote_id,
                                            temp, volt,
                                            timestamp=self.clock))
        self.readings_produced += len(out)
        return out

    def run(self, ticks: int) -> List[Tuple]:
        out: List[Tuple] = []
        for _ in range(ticks):
            out.extend(self.step())
        return out

    # -- accounting -------------------------------------------------------------
    def total_samples(self) -> int:
        return sum(m.samples_taken for m in self.motes)

    def total_control_messages(self) -> int:
        return sum(m.control_messages for m in self.motes)

    def stats(self) -> Dict[str, int]:
        return {
            "clock": self.clock,
            "interests": len(self._interests),
            "samples": self.total_samples(),
            "control_messages": self.total_control_messages(),
            "readings": self.readings_produced,
        }
