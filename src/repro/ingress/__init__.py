"""ingress subpackage of the TelegraphCQ reproduction."""
