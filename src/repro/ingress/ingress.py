"""The one Ingress protocol: every door tuples enter the system through.

Five PRs accreted three ingress flavours — ``TelegraphCQServer.
push_tuple`` (client pushes), :class:`~repro.fjords.module.SourceModule`
(fjord dataflows polling the outside world), and
:class:`~repro.ingress.wrappers.Streamer` (the Wrapper role fanning out
to executor queues) — each re-implementing the same obligations with
slightly different code.  The network PUSH frame (:mod:`repro.net`)
would have been a fourth copy.

Every ingress owes the rest of the system exactly four things:

1. **timestamping** — a tuple without an event time gets the point's
   monotone ingestion sequence;
2. **trace attachment** — when sampled tracing is on, the Nth arrival
   gets a :class:`~repro.monitor.tracing.TraceContext` (idempotently:
   a tuple that already carries one keeps it, so composed ingress
   points — the network edge in front of the server's — attach once);
3. **admission** — an optional QoS shedder
   (:class:`~repro.monitor.qos.LoadShedder`-shaped, duck-typed) filters
   the batch before any state is touched;
4. **delivery** — append to the stream's historical store (when the
   point materialises) and hand the tuple to the flavour's consumer.

:class:`IngressPoint` implements all four once; the flavours configure
it instead of re-implementing it.  Points compose: the service's
network point (sheds, no store) delivers into the server's per-stream
point (stores, fans out to engines) and the trace attaches exactly once.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, List, Optional

import repro.monitor.tracing as tracing


def attach_trace(t: Any, source: str) -> None:
    """Sampled trace attachment, idempotent across composed ingress
    points: a tuple that already carries a trace keeps it."""
    tracer = tracing.TRACER
    if tracer.active and getattr(t, "trace", None) is None:
        tracer.maybe_start(t, source)


class Ingress:
    """The structural protocol: ``admit(tuples) -> int`` delivered,
    ``admit_one(t) -> bool``.  Satisfaction is structural (like
    :class:`~repro.sched.protocol.Schedulable`); :class:`IngressPoint`
    is the canonical implementation every flavour configures."""

    name: str = ""

    def admit(self, tuples: Iterable[Any]) -> int:
        raise NotImplementedError

    def admit_one(self, t: Any) -> bool:
        raise NotImplementedError


class IngressPoint(Ingress):
    """One configured ingress door.

    ``deliver`` is the flavour's consumer (engine fan-out, fjord queue
    push, module emit, ``server.push_tuple`` for the network edge);
    ``store`` materialises history; ``shedder`` gates admission;
    ``assign_timestamps`` stamps tuples that arrive without one.
    """

    __slots__ = ("name", "deliver", "store", "shedder",
                 "assign_timestamps", "_seq", "accepted", "shed")

    def __init__(self, name: str,
                 deliver: Callable[[Any], Any],
                 store: Optional[Any] = None,
                 shedder: Optional[Any] = None,
                 assign_timestamps: bool = False):
        self.name = name
        self.deliver = deliver
        self.store = store
        self.shedder = shedder
        self.assign_timestamps = assign_timestamps
        self._seq = itertools.count(1)
        self.accepted = 0
        self.shed = 0

    # -- the four obligations, once ---------------------------------------
    def _prepare(self, t: Any) -> None:
        if self.assign_timestamps and t.timestamp is None:
            t.timestamp = next(self._seq)
        attach_trace(t, self.name)
        if self.store is not None:
            self.store.append(t)

    def admit_one(self, t: Any) -> bool:
        """Admit a single tuple; returns False when shed."""
        if self.shedder is not None and not self.shedder.admit([t]):
            self.shed += 1
            return False
        self._prepare(t)
        self.deliver(t)
        self.accepted += 1
        return True

    def admit(self, tuples: Iterable[Any]) -> int:
        """Admit a batch (shedding decides on the whole batch at once);
        returns how many tuples were delivered."""
        batch: List[Any] = list(tuples)
        if self.shedder is not None:
            kept = self.shedder.admit(batch)
            self.shed += len(batch) - len(kept)
            batch = kept
        for t in batch:
            self._prepare(t)
            self.deliver(t)
        self.accepted += len(batch)
        return len(batch)

    def __repr__(self) -> str:
        return (f"IngressPoint({self.name}, accepted={self.accepted}, "
                f"shed={self.shed})")
