"""TeSS — the Telegraph Screen Scraper, simulated (Section 2.1).

"Most Ingress modules are fairly traditional wrappers, such as an
HTML/XML screen scraper (called 'TeSS', the Telegraph Screen Scraper)
... the TeSS module is able to pass bindings into remote websites to
perform lookups."

Offline, the *website* is simulated but the wrapper mechanics are real:

* a :class:`SimulatedWebForm` holds a relation behind a form with a
  declared binding pattern (which columns may be bound on submission),
  page-sized results with follow-up "next page" fetches, per-request
  latency, and a transient failure rate;
* :class:`TessWrapper` is the ingress module: it accepts *binding
  tuples* (e.g. an S tuple whose join column binds the form's input),
  submits the form, paginates, parses the "scraped" rows into tuples of
  the declared schema, retries transient failures, and memoises
  previous lookups in a :class:`~repro.core.stem.CacheSteM` — the
  [HN96] caching the paper attaches to expensive methods.

The wrapper exposes the asynchronous-index-join surface of Section 2.2:
``lookup(bindings)`` returns matching tuples; a
:class:`~repro.core.stem.RendezvousBuffer` upstream holds probe tuples
while requests are outstanding.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple as TypingTuple

from repro.core.stem import CacheSteM
from repro.core.tuples import Schema, Tuple
from repro.errors import ExecutionError


class WebFormError(ExecutionError):
    """A form submission failed permanently (after retries)."""


class SimulatedWebForm:
    """The remote side: a relation behind an HTML form.

    ``bindable`` declares the form's input fields (the binding pattern);
    submissions binding any other column are rejected, like a real form
    would simply not offer that input.
    """

    def __init__(self, name: str, schema: Schema, rows: Iterable[Tuple],
                 bindable: Sequence[str], page_size: int = 10,
                 latency_cost: int = 50, failure_rate: float = 0.0,
                 seed: int = 0):
        self.name = name
        self.schema = schema
        self.bindable = tuple(bindable)
        for col in self.bindable:
            schema.index_of(col)                # validate eagerly
        self._rows = list(rows)
        self.page_size = page_size
        self.latency_cost = latency_cost
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.requests = 0
        self.failures_injected = 0

    def submit(self, bindings: Dict[str, Any],
               page: int = 0) -> TypingTuple[List[TypingTuple], bool]:
        """One HTTP round trip: returns (raw rows, has_more).

        Raw rows are plain value tuples — the "HTML" the wrapper parses.
        Raises ExecutionError on a (transient) failure.
        """
        unknown = set(bindings) - set(self.bindable)
        if unknown:
            raise WebFormError(
                f"form {self.name!r} has no input field(s) "
                f"{sorted(unknown)}; bindable: {list(self.bindable)}")
        self.requests += 1
        acc = 0
        for i in range(self.latency_cost):      # simulated latency
            acc += i
        if self.failure_rate and self._rng.random() < self.failure_rate:
            self.failures_injected += 1
            raise ExecutionError(f"form {self.name!r}: transient error")
        matching = [t.values for t in self._rows
                    if all(t[col] == value
                           for col, value in bindings.items())]
        start = page * self.page_size
        chunk = matching[start:start + self.page_size]
        return chunk, start + self.page_size < len(matching)


class TessWrapper:
    """The ingress wrapper over a simulated web form."""

    def __init__(self, form: SimulatedWebForm, max_retries: int = 3,
                 cache_capacity: int = 1024):
        self.form = form
        self.max_retries = max_retries
        #: previous expensive lookups, cached per the [HN96] pattern.
        self.cache = CacheSteM(form.schema.name or form.name,
                               capacity=cache_capacity,
                               index_columns=list(form.bindable))
        self._cached_keys: set = set()
        self.lookups = 0
        self.cache_hits = 0
        self.retries = 0

    def lookup(self, bindings: Dict[str, Any]) -> List[Tuple]:
        """Bind the form's inputs and scrape every result page.

        Single-column bindings are served from the cache when the same
        binding was looked up before; multi-column bindings always hit
        the form (the cache indexes one column at a time).
        """
        self.lookups += 1
        cache_key = tuple(sorted(bindings.items()))
        if cache_key in self._cached_keys:
            self.cache_hits += 1
            return self._from_cache(bindings)
        rows: List[Tuple] = []
        page = 0
        has_more = True
        while has_more:
            raw, has_more = self._submit_with_retry(bindings, page)
            for values in raw:
                rows.append(Tuple(self.form.schema, values,
                                  timestamp=len(rows)))
            page += 1
        for t in rows:
            self.cache.build(t)
        self._cached_keys.add(cache_key)
        return rows

    def _from_cache(self, bindings: Dict[str, Any]) -> List[Tuple]:
        out = []
        for t in self.cache.contents():
            if all(t[col] == value for col, value in bindings.items()):
                out.append(t)
        return out

    def _submit_with_retry(self, bindings: Dict[str, Any],
                           page: int) -> TypingTuple[List, bool]:
        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            try:
                return self.form.submit(bindings, page)
            except WebFormError:
                raise                           # permanent: bad binding
            except ExecutionError as exc:
                last_error = exc
                if attempt < self.max_retries:
                    self.retries += 1
        raise WebFormError(
            f"form {self.form.name!r} failed after "
            f"{self.max_retries} retries: {last_error}")

    def stats(self) -> Dict[str, int]:
        return {
            "lookups": self.lookups,
            "cache_hits": self.cache_hits,
            "requests": self.form.requests,
            "retries": self.retries,
        }
