"""Data sources: the external world, simulated (Section 4.2.3).

TelegraphCQ's Wrapper process supports two kinds of sources:

1. **Pull sources**, "as found in traditional federated database
   systems" — the wrapper asks for the next batch;
2. **Push sources**, where either the wrapper connects out
   (*push-client*) or the source connects in (*push-server*) and data
   arrives whenever the source feels like it.

Because the paper's real sources (web forms, sensor motes, P2P networks)
need a network, each class here simulates the *timing and control*
behaviour of its kind against in-memory data: push sources own an
arrival schedule and release tuples only when the simulated clock
reaches them; pull sources return data on demand; the remote index
charges a per-lookup latency, which is what the hybrid-join experiment
(E2) needs from a "TeSS-wrapped web lookup".
"""

from __future__ import annotations

import csv
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.tuples import Schema, Tuple
from repro.errors import ExecutionError


class DataSource:
    """Base class; concrete sources implement :meth:`poll`.

    ``poll(now, budget)`` returns at most ``budget`` tuples available at
    simulated time ``now`` and sets :attr:`exhausted` when no more data
    will ever come.
    """

    kind = "abstract"

    def __init__(self, name: str):
        self.name = name
        self.exhausted = False
        self.produced = 0

    def poll(self, now: int, budget: int) -> List[Tuple]:
        raise NotImplementedError


class PullSource(DataSource):
    """A pull source hands out the next batch whenever asked."""

    kind = "pull"

    def __init__(self, name: str, tuples: Iterable[Tuple]):
        super().__init__(name)
        self._iter = iter(tuples)

    def poll(self, now: int, budget: int) -> List[Tuple]:
        out: List[Tuple] = []
        for _ in range(budget):
            try:
                out.append(next(self._iter))
            except StopIteration:
                self.exhausted = True
                break
        self.produced += len(out)
        return out


class PushSource(DataSource):
    """A push source releases tuples according to its arrival schedule.

    ``schedule`` maps each tuple to its arrival time; the default
    derives arrival times from tuple timestamps.  Polling before a
    tuple's arrival time yields nothing — the wrapper must cope with
    quiet sources without blocking, which is the whole point of Fjords.
    """

    kind = "push"

    def __init__(self, name: str, tuples: Sequence[Tuple],
                 arrival_times: Optional[Sequence[int]] = None,
                 mode: str = "push-server"):
        super().__init__(name)
        if mode not in ("push-server", "push-client"):
            raise ExecutionError(f"unknown push mode {mode!r}")
        self.mode = mode
        self._tuples = list(tuples)
        if arrival_times is None:
            arrival_times = [t.timestamp or 0 for t in self._tuples]
        if len(arrival_times) != len(self._tuples):
            raise ExecutionError("arrival schedule length mismatch")
        self._arrivals = list(arrival_times)
        self._next = 0

    def poll(self, now: int, budget: int) -> List[Tuple]:
        out: List[Tuple] = []
        while (self._next < len(self._tuples) and len(out) < budget
               and self._arrivals[self._next] <= now):
            out.append(self._tuples[self._next])
            self._next += 1
        if self._next >= len(self._tuples):
            self.exhausted = True
        self.produced += len(out)
        return out

    def pending_at(self, now: int) -> int:
        """How many tuples have arrived but not been polled — queue
        growth under overload, read by the QoS experiments."""
        n = 0
        i = self._next
        while i < len(self._tuples) and self._arrivals[i] <= now:
            n += 1
            i += 1
        return n


class BurstySource(PushSource):
    """A push source with bursty arrivals: ``rate`` tuples per tick
    normally, ``rate * burst_factor`` during bursts."""

    def __init__(self, name: str, tuples: Sequence[Tuple], rate: float = 1.0,
                 burst_every: int = 0, burst_len: int = 0,
                 burst_factor: float = 10.0):
        arrivals: List[int] = []
        clock = 0.0
        tick = 0
        interval = 1.0 / rate if rate > 0 else 1.0
        for i, _t in enumerate(tuples):
            in_burst = (burst_every and burst_len and
                        int(clock) % burst_every < burst_len)
            step = interval / burst_factor if in_burst else interval
            clock += step
            tick = int(clock)
            arrivals.append(tick)
        super().__init__(name, tuples, arrival_times=arrivals)


class FileSource(PullSource):
    """Reads a CSV file into a stream — the paper's "local file reader"
    ingress module.  Values are parsed as int, then float, then str."""

    kind = "pull"

    def __init__(self, name: str, path: str, schema: Schema,
                 has_header: bool = True,
                 timestamp_column: Optional[str] = None):
        self.path = path
        self.schema = schema
        tuples = list(self._read(path, schema, has_header, timestamp_column))
        super().__init__(name, tuples)

    @staticmethod
    def _parse(raw: str) -> Any:
        for caster in (int, float):
            try:
                return caster(raw)
            except ValueError:
                continue
        return raw

    def _read(self, path: str, schema: Schema, has_header: bool,
              timestamp_column: Optional[str]) -> Iterator[Tuple]:
        with open(path, newline="") as f:
            reader = csv.reader(f)
            if has_header:
                next(reader, None)
            for i, row in enumerate(reader):
                values = tuple(self._parse(v) for v in row)
                ts = i
                if timestamp_column is not None:
                    ts = values[schema.index_of(timestamp_column)]
                yield Tuple(schema, values, timestamp=ts)


class RemoteIndexSource:
    """A simulated remote lookup index (a TeSS-wrapped web form).

    ``lookup(key)`` returns the matching tuples after charging
    ``latency_cost`` units of simulated work; the access-method choice
    in the hybrid-join experiment is between paying this repeatedly and
    scanning a local stream.  Latency can be changed mid-run to model a
    remote source slowing down.
    """

    def __init__(self, name: str, tuples: Iterable[Tuple], key_column: str,
                 latency_cost: int = 100):
        self.name = name
        self.key_column = key_column
        self.latency_cost = latency_cost
        self._index: Dict[Any, List[Tuple]] = {}
        for t in tuples:
            self._index.setdefault(t[key_column], []).append(t)
        self.lookups = 0
        self.work_charged = 0

    def lookup(self, key: Any) -> List[Tuple]:
        self.lookups += 1
        self.work_charged += self.latency_cost
        # Burn deterministic CPU proportional to the simulated latency so
        # wall-clock benchmarks see the cost too.
        acc = 0
        for i in range(self.latency_cost):
            acc += i
        return list(self._index.get(key, ()))
